package sim

import (
	"math"
	"math/rand"
	"testing"

	"guardedop/internal/ctmc"
	"guardedop/internal/mdcd"
	"guardedop/internal/sparse"
)

// buildChain builds a CTMC from generator triples for simulator unit tests.
func buildChain(t *testing.T, n int, triples [][3]float64) *ctmc.Chain {
	t.Helper()
	g := sparse.NewCOO(n, n)
	for _, tr := range triples {
		from, to, rate := int(tr[0]), int(tr[1]), tr[2]
		g.Add(from, to, rate)
		g.Add(from, from, -rate)
	}
	c, err := ctmc.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestChainSimulatorMatchesTransient(t *testing.T) {
	// Two-state chain: P(state 1 at t) has a closed form; the empirical
	// frequency over many paths must agree within Monte-Carlo error.
	a, b := 3.0, 1.0
	chain := buildChain(t, 2, [][3]float64{{0, 1, a}, {1, 0, b}})
	cs := newChainSimulator(chain)
	rng := rand.New(rand.NewSource(7))
	const paths = 40000
	tEnd := 0.4
	hits := 0
	for i := 0; i < paths; i++ {
		end, _ := cs.run(0, 0, tEnd, rng, nil)
		if end == 1 {
			hits++
		}
	}
	got := float64(hits) / paths
	want := a / (a + b) * (1 - math.Exp(-(a+b)*tEnd))
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical P(1) = %.4f, want %.4f ± MC error", got, want)
	}
}

func TestChainSimulatorAbsorbs(t *testing.T) {
	chain := buildChain(t, 2, [][3]float64{{0, 1, 5}})
	cs := newChainSimulator(chain)
	rng := rand.New(rand.NewSource(3))
	end, tEnd := cs.run(0, 0, 1000, rng, nil)
	if end != 1 {
		t.Fatalf("did not absorb: end=%d", end)
	}
	if tEnd >= 1000 {
		t.Fatalf("absorption time %v not before horizon", tEnd)
	}
}

func TestChainSimulatorVisitorStops(t *testing.T) {
	chain := buildChain(t, 2, [][3]float64{{0, 1, 5}, {1, 0, 5}})
	cs := newChainSimulator(chain)
	rng := rand.New(rand.NewSource(3))
	visits := 0
	end, _ := cs.run(0, 0, 1000, rng, func(state int, entry float64) bool {
		visits++
		return visits < 3
	})
	if visits != 3 {
		t.Errorf("visits = %d, want 3", visits)
	}
	_ = end
}

func TestSampleInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := [2]int{}
	for i := 0; i < 10000; i++ {
		s, err := sampleInitial([]float64{0.25, 0.75}, rng)
		if err != nil {
			t.Fatal(err)
		}
		counts[s]++
	}
	if math.Abs(float64(counts[0])/10000-0.25) > 0.02 {
		t.Errorf("empirical split %v, want ≈ (0.25, 0.75)", counts)
	}
	if _, err := sampleInitial([]float64{0, 0}, rng); err == nil {
		t.Error("all-zero distribution accepted")
	}
}

func TestEstimateRhoMatchesAnalytic(t *testing.T) {
	p := mdcd.DefaultParams()
	gp, err := mdcd.BuildRMGp(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gp.Measures()
	if err != nil {
		t.Fatal(err)
	}
	horizon := 2000.0
	if testing.Short() {
		horizon = 500
	}
	rho1, rho2, err := EstimateRho(p, horizon, 5)
	if err != nil {
		t.Fatal(err)
	}
	tol1, tol2 := 0.005, 0.01
	if testing.Short() {
		tol1, tol2 = 0.015, 0.03
	}
	if math.Abs(rho1-want.Rho1) > tol1 {
		t.Errorf("simulated rho1 = %.4f, analytic %.4f", rho1, want.Rho1)
	}
	if math.Abs(rho2-want.Rho2) > tol2 {
		t.Errorf("simulated rho2 = %.4f, analytic %.4f", rho2, want.Rho2)
	}
}

func TestEstimateRhoRejectsBadHorizon(t *testing.T) {
	if _, _, err := EstimateRho(mdcd.DefaultParams(), 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestNewSimulatorValidation(t *testing.T) {
	p := mdcd.DefaultParams()
	if _, err := NewSimulator(p, 0, 0.9); err == nil {
		t.Error("rho1=0 accepted")
	}
	if _, err := NewSimulator(p, 0.9, 1.5); err == nil {
		t.Error("rho2>1 accepted")
	}
	bad := p
	bad.Theta = -1
	if _, err := NewSimulator(bad, 0.9, 0.9); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestEstimateYRejectsBadInput(t *testing.T) {
	s, err := NewSimulator(mdcd.DefaultParams(), 0.98, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.EstimateY(-5, Options{Paths: 10}); err == nil {
		t.Error("negative phi accepted")
	}
	if _, err := s.EstimateY(5000, Options{Paths: 10, GammaMode: GammaFixed, Gamma: 2}); err == nil {
		t.Error("gamma=2 accepted")
	}
}

// mcPaths returns full outside -short mode and a reduced replication count
// under -short, keeping the race-enabled CI suite inside the package
// timeout. Assertions whose tolerance scales with the standard error stay
// valid automatically; count-based assertions must check testing.Short.
func mcPaths(full int) int {
	if testing.Short() {
		return full / 8
	}
	return full
}

// scaledParams returns a parameter set with the same dimensionless products
// (mu*theta, lambda >> mu, phi/theta) as Table 3 but a far smaller lambda*theta
// event count, keeping simulation unit tests fast. The paper-scale parameters
// are exercised by the valsim experiment and the benchmark suite.
func scaledParams() mdcd.Params {
	p := mdcd.DefaultParams()
	p.Theta = 1000
	p.MuNew = 1e-3
	p.MuOld = 1e-7
	p.Lambda = 120
	p.Alpha, p.Beta = 600, 600
	return p
}

func TestEstimateYAtPhiZeroIsNearOne(t *testing.T) {
	s, err := NewSimulator(scaledParams(), 0.98, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	est, err := s.EstimateY(0, Options{Paths: mcPaths(8000), Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// At phi=0 both W estimates target the same distribution, so Y ≈ 1
	// within a few standard errors.
	if math.Abs(est.Y-1) > 4*est.YStdErr+1e-9 {
		t.Errorf("Y(0) = %.4f ± %.4f, want ≈ 1", est.Y, est.YStdErr)
	}
	if est.CountS2 != 0 {
		t.Errorf("S2 paths at phi=0: %d, want 0", est.CountS2)
	}
}

func TestEstimateYIsDeterministicPerSeed(t *testing.T) {
	s, err := NewSimulator(scaledParams(), 0.98, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.EstimateY(500, Options{Paths: mcPaths(2000), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.EstimateY(500, Options{Paths: mcPaths(2000), Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Y != b.Y || a.EWPhi.Mean != b.EWPhi.Mean {
		t.Errorf("same seed gave different results: %v vs %v", a.Y, b.Y)
	}
}

func TestEstimateYPathClassesPartition(t *testing.T) {
	s, err := NewSimulator(scaledParams(), 0.98, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	paths := mcPaths(4000)
	est, err := s.EstimateY(700, Options{Paths: paths, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if est.CountS1+est.CountS2+est.CountFailed != paths {
		t.Errorf("path classes do not partition: %+v", est)
	}
	// The rarer classes need the full replication count to show up reliably.
	if !testing.Short() && (est.CountS1 == 0 || est.CountS2 == 0 || est.CountFailed == 0) {
		t.Errorf("expected all three path classes at phi=700: %+v", est)
	}
}
