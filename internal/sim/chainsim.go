package sim

import (
	"fmt"
	"math/rand"

	"guardedop/internal/ctmc"
)

// chainSimulator draws sample paths of a CTMC using the embedded jump
// chain: dwell times are exponential with the state's exit rate, and the
// successor is chosen proportionally to the outgoing rates.
type chainSimulator struct {
	exitRate []float64
	// cumProb[s] holds the cumulative successor distribution of state s,
	// aligned with succ[s].
	cumProb [][]float64
	succ    [][]int
}

// newChainSimulator precomputes the jump-chain tables for the given CTMC.
func newChainSimulator(chain *ctmc.Chain) *chainSimulator {
	n := chain.NumStates()
	cs := &chainSimulator{
		exitRate: make([]float64, n),
		cumProb:  make([][]float64, n),
		succ:     make([][]int, n),
	}
	gen := chain.Generator()
	for s := 0; s < n; s++ {
		var rates []float64
		var succ []int
		total := 0.0
		gen.Row(s, func(c int, v float64) {
			if c != s && v > 0 {
				rates = append(rates, v)
				succ = append(succ, c)
				total += v
			}
		})
		cs.exitRate[s] = total
		cs.succ[s] = succ
		cum := make([]float64, len(rates))
		acc := 0.0
		for i, r := range rates {
			acc += r / total
			cum[i] = acc
		}
		if len(cum) > 0 {
			cum[len(cum)-1] = 1 // guard against round-off
		}
		cs.cumProb[s] = cum
	}
	return cs
}

// sampleInitial draws a state from an initial distribution.
func sampleInitial(dist []float64, rng *rand.Rand) (int, error) {
	u := rng.Float64()
	acc := 0.0
	last := -1
	for s, p := range dist {
		if p <= 0 {
			continue
		}
		acc += p
		last = s
		if u < acc {
			return s, nil
		}
	}
	if last >= 0 { // round-off: total just under u
		return last, nil
	}
	return 0, fmt.Errorf("sim: initial distribution has no mass")
}

// visitor observes each (state, entryTime) pair along a path; returning
// false stops the walk.
type visitor func(state int, entry float64) bool

// run simulates from state at time t0 until tMax, invoking visit on every
// state entry (including the initial one at t0). It returns the state
// occupied at tMax (or the absorbing state reached earlier) and the time at
// which the path stopped moving (tMax, or earlier for absorption).
func (cs *chainSimulator) run(state int, t0, tMax float64, rng *rand.Rand, visit visitor) (endState int, endTime float64) {
	t := t0
	if visit != nil && !visit(state, t) {
		return state, t
	}
	for {
		q := cs.exitRate[state]
		if q == 0 {
			return state, t // absorbing
		}
		dwell := rng.ExpFloat64() / q
		if t+dwell >= tMax {
			return state, tMax
		}
		t += dwell
		u := rng.Float64()
		cum := cs.cumProb[state]
		next := cs.succ[state][len(cum)-1]
		for i, c := range cum {
			if u < c {
				next = cs.succ[state][i]
				break
			}
		}
		state = next
		if visit != nil && !visit(state, t) {
			return state, t
		}
	}
}
