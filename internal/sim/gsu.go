package sim

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"guardedop/internal/mdcd"
)

// GammaMode selects how the S2 discount factor γ is applied to sample paths.
type GammaMode int

// Gamma treatment choices.
const (
	// GammaPerPath applies γ(τ) = 1 − τ/θ at each path's own detection
	// time — the design-level definition of the discount.
	GammaPerPath GammaMode = iota
	// GammaFixed applies a single externally supplied γ to every S2 path,
	// matching the paper's evaluation-level approximation.
	GammaFixed
)

// Options configures the Monte-Carlo estimator.
type Options struct {
	// Paths is the number of independent replications (default 20000).
	Paths int
	// Seed seeds the deterministic random stream (default 1).
	Seed int64
	// GammaMode selects the discount treatment (default GammaPerPath).
	GammaMode GammaMode
	// Gamma is the fixed discount used with GammaFixed.
	Gamma float64
}

func (o Options) withDefaults() Options {
	if o.Paths == 0 {
		o.Paths = 20000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Estimate is a Monte-Carlo mean with its standard error.
type Estimate struct {
	Mean   float64
	StdErr float64
	N      int
}

// YEstimate is the simulated performability index with its ingredients.
type YEstimate struct {
	Phi     float64
	Y       float64
	YStdErr float64
	EWI     float64
	EW0     Estimate
	EWPhi   Estimate
	// CountS1, CountS2, CountFailed partition the W_phi replications.
	CountS1, CountS2, CountFailed int
}

// Simulator draws sample paths of the monolithic GSU process. It reuses the
// CTMCs generated for the analytic models, so the analytic and simulated
// results share one model description.
type Simulator struct {
	params     mdcd.Params
	rho1, rho2 float64

	gd       *mdcd.RMGd
	gdSim    *chainSimulator
	ndNew    *mdcd.RMNd
	ndNewSim *chainSimulator
	ndOld    *mdcd.RMNd
	ndOldSim *chainSimulator
}

// NewSimulator builds the path simulator. rho1 and rho2 are the
// forward-progress fractions used in worth accounting; they typically come
// from the analytic RMGp solution (a hybrid analytic/simulation evaluation,
// in the spirit of the paper's Section 7) or from EstimateRho.
func NewSimulator(p mdcd.Params, rho1, rho2 float64) (*Simulator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if rho1 <= 0 || rho1 > 1 || rho2 <= 0 || rho2 > 1 {
		return nil, fmt.Errorf("sim: rho out of (0,1]: rho1=%g rho2=%g", rho1, rho2)
	}
	gd, err := mdcd.BuildRMGd(p)
	if err != nil {
		return nil, err
	}
	ndNew, err := mdcd.BuildRMNd(p, p.MuNew)
	if err != nil {
		return nil, err
	}
	ndOld, err := mdcd.BuildRMNd(p, p.MuOld)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		params:   p,
		rho1:     rho1,
		rho2:     rho2,
		gd:       gd,
		gdSim:    newChainSimulator(gd.Space.Chain),
		ndNew:    ndNew,
		ndNewSim: newChainSimulator(ndNew.Space.Chain),
		ndOld:    ndOld,
		ndOldSim: newChainSimulator(ndOld.Space.Chain),
	}, nil
}

// normalModeIndex maps carried-over contamination flags into a state index
// of an RMNd space.
func normalModeIndex(nd *mdcd.RMNd, p1ctn, p2ctn bool) (int, error) {
	mk := nd.Space.Model.InitialMarking()
	if p1ctn {
		mk.Set(nd.P1ctn, 1)
	}
	if p2ctn {
		mk.Set(nd.P2ctn, 1)
	}
	idx := nd.Space.StateIndex(mk)
	if idx < 0 {
		return 0, fmt.Errorf("sim: normal-mode marking %v unreachable", mk)
	}
	return idx, nil
}

// simulateW0 draws one W_0 replication: the unguarded upgraded pair runs
// through [0, θ]; worth is 2θ on survival, 0 otherwise.
func (s *Simulator) simulateW0(rng *rand.Rand) (float64, error) {
	start, err := sampleInitial(s.ndNew.Space.Initial, rng)
	if err != nil {
		return 0, err
	}
	end, _ := s.ndNewSim.run(start, 0, s.params.Theta, rng, nil)
	if s.ndNew.Space.States[end].Get(s.ndNew.Failure) == 1 {
		return 0, nil
	}
	return 2 * s.params.Theta, nil
}

// pathClass tags a W_phi replication.
type pathClass int

const (
	classFailed pathClass = iota
	classS1
	classS2
)

// simulateWPhi draws one W_phi replication of the monolithic process:
// RMGd dynamics on [0, φ], then — across the deterministic boundary, with
// latent contamination carried over — RMNd dynamics on [φ, θ].
func (s *Simulator) simulateWPhi(phi float64, gamma func(tau float64) float64, rng *rand.Rand) (float64, pathClass, error) {
	p := s.params
	start, err := sampleInitial(s.gd.Space.Initial, rng)
	if err != nil {
		return 0, classFailed, err
	}

	// Guarded interval [0, φ]; record the detection instant if any.
	tau := math.NaN()
	endGd, _ := s.gdSim.run(start, 0, phi, rng, func(state int, entry float64) bool {
		mk := s.gd.Space.States[state]
		if math.IsNaN(tau) && mk.Get(s.gd.Detected) == 1 {
			tau = entry
		}
		return true
	})
	mk := s.gd.Space.States[endGd]
	if mk.Get(s.gd.Failure) == 1 {
		return 0, classFailed, nil
	}

	if mk.Get(s.gd.Detected) == 1 {
		// S2 candidate: the recovered pair {P1old, P2} continues to θ.
		idx, err := normalModeIndex(s.ndOld, mk.Get(s.gd.P1Octn) == 1, mk.Get(s.gd.P2ctn) == 1)
		if err != nil {
			return 0, classFailed, err
		}
		end, _ := s.ndOldSim.run(idx, phi, p.Theta, rng, nil)
		if s.ndOld.Space.States[end].Get(s.ndOld.Failure) == 1 {
			return 0, classFailed, nil
		}
		worth := gamma(tau) * ((s.rho1+s.rho2)*tau + 2*(p.Theta-tau))
		return worth, classS2, nil
	}

	// S1 candidate: the upgraded pair {P1new, P2} continues to θ, with any
	// latent contamination at φ carried across the boundary.
	idx, err := normalModeIndex(s.ndNew, mk.Get(s.gd.P1Nctn) == 1, mk.Get(s.gd.P2ctn) == 1)
	if err != nil {
		return 0, classFailed, err
	}
	end, _ := s.ndNewSim.run(idx, phi, p.Theta, rng, nil)
	if s.ndNew.Space.States[end].Get(s.ndNew.Failure) == 1 {
		return 0, classFailed, nil
	}
	return (s.rho1+s.rho2)*phi + 2*(p.Theta-phi), classS1, nil
}

// EstimateY estimates the performability index at duration phi by
// Monte-Carlo simulation of the monolithic process.
func (s *Simulator) EstimateY(phi float64, opts Options) (YEstimate, error) {
	p := s.params
	if math.IsNaN(phi) || phi < 0 || phi > p.Theta {
		return YEstimate{}, fmt.Errorf("sim: phi = %g out of [0, theta=%g]", phi, p.Theta)
	}
	opts = opts.withDefaults()
	gamma := func(tau float64) float64 {
		g := 1 - tau/p.Theta
		if g < 0 {
			return 0
		}
		return g
	}
	if opts.GammaMode == GammaFixed {
		if opts.Gamma < 0 || opts.Gamma > 1 || math.IsNaN(opts.Gamma) {
			return YEstimate{}, fmt.Errorf("sim: fixed gamma = %g out of [0,1]", opts.Gamma)
		}
		fixed := opts.Gamma
		gamma = func(float64) float64 { return fixed }
	}

	out := YEstimate{Phi: phi, EWI: 2 * p.Theta}

	sum0, sumSq0, _, err := s.runPaths(opts.Paths, opts.Seed, func(rng *rand.Rand) (float64, pathClass, error) {
		w, err := s.simulateW0(rng)
		return w, classS1, err
	})
	if err != nil {
		return YEstimate{}, err
	}
	out.EW0 = finishEstimate(sum0, sumSq0, opts.Paths)

	sumP, sumSqP, counts, err := s.runPaths(opts.Paths, opts.Seed+1, func(rng *rand.Rand) (float64, pathClass, error) {
		return s.simulateWPhi(phi, gamma, rng)
	})
	if err != nil {
		return YEstimate{}, err
	}
	out.CountFailed = counts[classFailed]
	out.CountS1 = counts[classS1]
	out.CountS2 = counts[classS2]
	out.EWPhi = finishEstimate(sumP, sumSqP, opts.Paths)

	num := out.EWI - out.EW0.Mean
	den := out.EWI - out.EWPhi.Mean
	if den <= 0 {
		return YEstimate{}, fmt.Errorf("sim: estimated E[W_I]-E[W_phi] = %g <= 0", den)
	}
	out.Y = num / den
	// First-order error propagation for the ratio of independent estimates.
	relNum := out.EW0.StdErr / num
	relDen := out.EWPhi.StdErr / den
	out.YStdErr = out.Y * math.Sqrt(relNum*relNum+relDen*relDen)
	return out, nil
}

// runPaths draws n independent replications in parallel across
// runtime.NumCPU()-bounded workers. Each path gets its own deterministic
// random stream derived from (seed, path index), so results are identical
// regardless of worker count or scheduling.
func (s *Simulator) runPaths(n int, seed int64, one func(*rand.Rand) (float64, pathClass, error)) (sum, sumSq float64, counts [3]int, err error) {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	// Per-path results are stored by index and reduced sequentially so the
	// floating-point summation order — and therefore the estimate — is
	// bitwise identical regardless of worker count or scheduling.
	worths := make([]float64, n)
	classes := make([]pathClass, n)
	errs := make([]error, workers)

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				rng := rand.New(rand.NewSource(pathSeed(seed, i)))
				worth, class, err := one(rng)
				if err != nil {
					errs[w] = err
					return
				}
				worths[i] = worth
				classes[i] = class
			}
		}()
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return 0, 0, counts, e
		}
	}
	for i := 0; i < n; i++ {
		sum += worths[i]
		sumSq += worths[i] * worths[i]
		counts[classes[i]]++
	}
	return sum, sumSq, counts, nil
}

// pathSeed derives the per-path RNG seed with the SplitMix64 finalizer:
// golden-ratio increment per path index, then two xor-shift-multiply
// mixing rounds. A bare linear stride (the previous scheme, which also
// truncated the golden-ratio constant to 56 bits) leaves the low seed
// bits nearly identical across neighbouring paths; the finalizer
// decorrelates every bit of every stream.
func pathSeed(seed, i int64) int64 {
	z := uint64(seed) + uint64(i)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func finishEstimate(sum, sumSq float64, n int) Estimate {
	mean := sum / float64(n)
	variance := (sumSq - float64(n)*mean*mean) / float64(n-1)
	if variance < 0 {
		variance = 0
	}
	return Estimate{Mean: mean, StdErr: math.Sqrt(variance / float64(n)), N: n}
}

// EstimateRho estimates the forward-progress fractions (ρ₁, ρ₂) by a
// long-run simulation of the RMGp chain over the given horizon (in hours)
// with a 2% burn-in, validating the analytic steady-state solution.
func EstimateRho(p mdcd.Params, horizon float64, seed int64) (rho1, rho2 float64, err error) {
	if horizon <= 0 || math.IsNaN(horizon) {
		return 0, 0, fmt.Errorf("sim: horizon = %g must be positive", horizon)
	}
	gp, err := mdcd.BuildRMGp(p)
	if err != nil {
		return 0, 0, err
	}
	oh1 := gp.Overhead1Structure().RateVector(gp.Space)
	oh2 := gp.Overhead2Structure().RateVector(gp.Space)
	cs := newChainSimulator(gp.Space.Chain)
	if seed == 0 {
		seed = 1
	}
	rng := rand.New(rand.NewSource(seed))
	start, err := sampleInitial(gp.Space.Initial, rng)
	if err != nil {
		return 0, 0, err
	}
	burnIn := 0.02 * horizon
	var t1, t2, measured float64
	prevState, prevTime := start, 0.0
	account := func(state int, until float64) {
		from := prevTime
		if from < burnIn {
			from = burnIn
		}
		if until > from {
			d := until - from
			measured += d
			t1 += d * oh1[state]
			t2 += d * oh2[state]
		}
	}
	cs.run(start, 0, horizon, rng, func(state int, entry float64) bool {
		if entry > 0 {
			account(prevState, entry)
		}
		prevState, prevTime = state, entry
		return true
	})
	account(prevState, horizon)
	if measured <= 0 {
		return 0, 0, fmt.Errorf("sim: horizon too short for burn-in")
	}
	return 1 - t1/measured, 1 - t2/measured, nil
}
