package textplot

import (
	"strings"
	"testing"
)

func TestChartBasics(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	out := Chart("demo", xs, []Series{
		{Name: "up", Y: []float64{0, 1, 2, 3}},
		{Name: "down", Y: []float64{3, 2, 1, 0}},
	}, 40, 10)
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "* up") || !strings.Contains(out, "o down") {
		t.Errorf("legend missing:\n%s", out)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("markers missing from plot area")
	}
}

func TestChartEmpty(t *testing.T) {
	out := Chart("empty", nil, nil, 40, 10)
	if !strings.Contains(out, "(no data)") {
		t.Errorf("empty chart output: %q", out)
	}
}

func TestChartConstantSeries(t *testing.T) {
	// A flat line must not divide by zero.
	out := Chart("", []float64{0, 1}, []Series{{Name: "flat", Y: []float64{1, 1}}}, 30, 6)
	if !strings.Contains(out, "flat") {
		t.Error("flat series legend missing")
	}
}

func TestChartEnforcesMinimumSize(t *testing.T) {
	out := Chart("", []float64{0, 1}, []Series{{Name: "s", Y: []float64{0, 1}}}, 1, 1)
	if len(strings.Split(out, "\n")) < 5 {
		t.Errorf("chart too small:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"phi", "Y"},
		{"0", "1.000"},
		{"7000", "1.537"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("missing header underline:\n%s", out)
	}
	if !strings.Contains(lines[3], "7000") || !strings.Contains(lines[3], "1.537") {
		t.Errorf("row content wrong:\n%s", out)
	}
}

func TestTableEmpty(t *testing.T) {
	if got := Table(nil); got != "" {
		t.Errorf("Table(nil) = %q, want empty", got)
	}
}

func TestClamp(t *testing.T) {
	if clamp(-1, 0, 5) != 0 || clamp(7, 0, 5) != 5 || clamp(3, 0, 5) != 3 {
		t.Error("clamp broken")
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("h", []float64{1, 1, 1, 2, 3, 3}, 3, 20)
	if !strings.Contains(out, "h") || !strings.Contains(out, "#") {
		t.Errorf("histogram output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // title + 3 bins
		t.Errorf("histogram has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasSuffix(lines[1], "3") {
		t.Errorf("first bin count wrong:\n%s", out)
	}
}

func TestHistogramDegenerate(t *testing.T) {
	if out := Histogram("", nil, 3, 20); !strings.Contains(out, "(no data)") {
		t.Errorf("empty histogram: %q", out)
	}
	// Constant values must not divide by zero.
	out := Histogram("", []float64{5, 5, 5}, 2, 5)
	if !strings.Contains(out, "#") {
		t.Errorf("constant histogram: %q", out)
	}
}
