// Package textplot renders small ASCII line charts and aligned tables for
// the command-line experiment reports. It exists so the figure-reproduction
// commands can show curve shapes directly in a terminal, the way the
// paper's Figures 9-12 show Y against φ.
package textplot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve sampled at shared X positions.
type Series struct {
	Name string
	Y    []float64
}

// markers cycles through per-series point glyphs, mirroring the paper's
// solid-dot / hollow-dot / triangle curve styles.
var markers = []byte{'*', 'o', '^', '+', 'x', '#'}

// Chart renders the series as an ASCII chart of the given size. All series
// must have len(xs) samples. Width and height are the plot-area dimensions
// in characters (sensible minimums are enforced).
func Chart(title string, xs []float64, series []Series, width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(xs) == 0 || len(series) == 0 {
		b.WriteString("(no data)\n")
		return b.String()
	}

	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, y := range s.Y {
			yMin = math.Min(yMin, y)
			yMax = math.Max(yMax, y)
		}
	}
	//lint:ignore floateq exact equality is the degenerate flat-series case that would divide by zero below
	if yMin == yMax {
		yMin -= 0.5
		yMax += 0.5
	}
	pad := 0.05 * (yMax - yMin)
	yMin -= pad
	yMax += pad
	xMin, xMax := xs[0], xs[len(xs)-1]
	//lint:ignore floateq exact equality is the degenerate single-x case that would divide by zero below
	if xMin == xMax {
		xMax = xMin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int(math.Round((x - xMin) / (xMax - xMin) * float64(width-1)))
		return clamp(c, 0, width-1)
	}
	row := func(y float64) int {
		r := int(math.Round((yMax - y) / (yMax - yMin) * float64(height-1)))
		return clamp(r, 0, height-1)
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		for i, y := range s.Y {
			if i >= len(xs) || math.IsNaN(y) {
				continue
			}
			grid[row(y)][col(xs[i])] = mark
		}
	}

	yLabelW := 9
	for r, line := range grid {
		var label string
		switch r {
		case 0:
			label = fmt.Sprintf("%8.3f", yMax)
		case height - 1:
			label = fmt.Sprintf("%8.3f", yMin)
		default:
			label = strings.Repeat(" ", 8)
		}
		fmt.Fprintf(&b, "%s |%s\n", label, string(line))
	}
	b.WriteString(strings.Repeat(" ", yLabelW))
	b.WriteString("+")
	b.WriteString(strings.Repeat("-", width))
	b.WriteString("\n")
	fmt.Fprintf(&b, "%s %-*.0f%*.0f\n", strings.Repeat(" ", yLabelW), width/2, xMin, width-width/2, xMax)

	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "%s %s\n", strings.Repeat(" ", yLabelW), strings.Join(legend, "   "))
	return b.String()
}

// Table renders rows with aligned columns. The first row is treated as a
// header and underlined.
func Table(rows [][]string) string {
	if len(rows) == 0 {
		return ""
	}
	widths := make([]int, 0)
	for _, row := range rows {
		for c, cell := range row {
			if c >= len(widths) {
				widths = append(widths, 0)
			}
			if len(cell) > widths[c] {
				widths[c] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(row []string) {
		for c, cell := range row {
			if c > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[c], cell)
		}
		b.WriteString("\n")
	}
	writeRow(rows[0])
	var sep []string
	for _, w := range widths[:len(rows[0])] {
		sep = append(sep, strings.Repeat("-", w))
	}
	writeRow(sep)
	for _, row := range rows[1:] {
		writeRow(row)
	}
	return b.String()
}

// Histogram renders a horizontal ASCII histogram of the values over the
// given number of equal-width bins.
func Histogram(title string, values []float64, bins, width int) string {
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	if len(values) == 0 || bins < 1 {
		b.WriteString("(no data)\n")
		return b.String()
	}
	if width < 10 {
		width = 10
	}
	lo, hi := values[0], values[0]
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	//lint:ignore floateq exact equality is the degenerate constant-sample case that would divide by zero below
	if lo == hi {
		hi = lo + 1
	}
	counts := make([]int, bins)
	for _, v := range values {
		idx := int((v - lo) / (hi - lo) * float64(bins))
		counts[clamp(idx, 0, bins-1)]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	for i, c := range counts {
		left := lo + float64(i)*(hi-lo)/float64(bins)
		bar := 0
		if maxCount > 0 {
			bar = int(math.Round(float64(c) / float64(maxCount) * float64(width)))
		}
		fmt.Fprintf(&b, "%12.4g |%-*s %d\n", left, width, strings.Repeat("#", bar), c)
	}
	return b.String()
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
