package dtmc

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"guardedop/internal/ctmc"
	"guardedop/internal/sparse"
)

// twoState builds the chain [[1-a, a], [b, 1-b]].
func twoState(t *testing.T, a, b float64) *Chain {
	t.Helper()
	p := sparse.NewCOO(2, 2)
	p.Add(0, 0, 1-a)
	p.Add(0, 1, a)
	p.Add(1, 0, b)
	p.Add(1, 1, 1-b)
	c, err := New(p)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewRejectsBadMatrices(t *testing.T) {
	nonSquare := sparse.NewCOO(2, 3)
	if _, err := New(nonSquare); err == nil {
		t.Error("non-square accepted")
	}
	negative := sparse.NewCOO(1, 1)
	negative.Add(0, 0, -1)
	if _, err := New(negative); err == nil {
		t.Error("negative probability accepted")
	}
	short := sparse.NewCOO(1, 1)
	short.Add(0, 0, 0.5)
	if _, err := New(short); err == nil {
		t.Error("substochastic row accepted")
	}
	empty := sparse.NewCOO(1, 1)
	if _, err := New(empty); err == nil {
		t.Error("all-zero row accepted")
	}
}

func TestTransientNClosedForm(t *testing.T) {
	// For the two-state chain, P(in 1 after n) = s(1-(1-a-b)^n) with
	// s = a/(a+b), starting in 0.
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	s := a / (a + b)
	for _, n := range []int{0, 1, 2, 5, 20} {
		pi, err := c.TransientN([]float64{1, 0}, n)
		if err != nil {
			t.Fatal(err)
		}
		want := s * (1 - math.Pow(1-a-b, float64(n)))
		if math.Abs(pi[1]-want) > 1e-12 {
			t.Errorf("n=%d: pi[1] = %.15f, want %.15f", n, pi[1], want)
		}
	}
}

func TestTransientNValidation(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if _, err := c.TransientN([]float64{1}, 1); err == nil {
		t.Error("wrong-length distribution accepted")
	}
	if _, err := c.TransientN([]float64{1, 0}, -1); err == nil {
		t.Error("negative step count accepted")
	}
}

func TestStationaryTwoState(t *testing.T) {
	a, b := 0.3, 0.1
	c := twoState(t, a, b)
	pi, err := c.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[1]-a/(a+b)) > 1e-10 {
		t.Errorf("pi[1] = %v, want %v", pi[1], a/(a+b))
	}
}

func TestStationaryPowerHandlesPeriodicChain(t *testing.T) {
	// The flip chain [[0,1],[1,0]] is periodic; damped power iteration must
	// still find (1/2, 1/2).
	c := twoState(t, 1, 1)
	pi, err := c.stationaryPower(1e-12, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-0.5) > 1e-9 {
		t.Errorf("periodic stationary = %v, want 0.5", pi[0])
	}
}

func TestAbsorbingAnalysisGamblersRuin(t *testing.T) {
	// Gambler's ruin on {0..4} with p=0.4: absorption at 4 from 2 has the
	// classical closed form.
	p, q := 0.4, 0.6
	n := 5
	m := sparse.NewCOO(n, n)
	m.Add(0, 0, 1)
	m.Add(n-1, n-1, 1)
	for i := 1; i < n-1; i++ {
		m.Add(i, i+1, p)
		m.Add(i, i-1, q)
	}
	c, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := c.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	// P(reach 4 before 0 | start 2) = (1-(q/p)^2)/(1-(q/p)^4).
	r := q / p
	want := (1 - math.Pow(r, 2)) / (1 - math.Pow(r, 4))
	// Transient states are 1..3; start state 2 is index 1; absorbing state
	// 4 is the second absorbing column.
	got := abs.Probabilities[1][1]
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ruin probability = %.12f, want %.12f", got, want)
	}
	if abs.Steps[1] <= 0 {
		t.Errorf("expected steps = %v, want > 0", abs.Steps[1])
	}
}

func TestAbsorbingAnalysisNoAbsorbing(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if _, err := c.AbsorbingAnalysis(); err == nil {
		t.Error("chain without absorbing states accepted")
	}
}

func TestEmbeddedChainOfCTMC(t *testing.T) {
	// CTMC 0 -> {1 (rate 3), 2 (rate 1)}; its jump chain leaves 0 with
	// probabilities 0.75 / 0.25, and 1, 2 become self-loop absorbing.
	g := sparse.NewCOO(3, 3)
	g.Add(0, 1, 3)
	g.Add(0, 2, 1)
	g.Add(0, 0, -4)
	cc, err := ctmc.New(g)
	if err != nil {
		t.Fatal(err)
	}
	jump, err := EmbeddedChain(cc)
	if err != nil {
		t.Fatal(err)
	}
	if got := jump.TransitionMatrix().At(0, 1); got != 0.75 {
		t.Errorf("P(0->1) = %v, want 0.75", got)
	}
	if !jump.IsAbsorbing(1) || !jump.IsAbsorbing(2) {
		t.Error("CTMC absorbing states not absorbing in the jump chain")
	}
	// Jump-chain absorption probabilities must match the CTMC's.
	jabs, err := jump.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	cabs, err := cc.AbsorbingAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(jabs.Probabilities[0][0]-cabs.Probabilities[0][0]) > 1e-12 {
		t.Errorf("jump-chain absorption %v != CTMC absorption %v",
			jabs.Probabilities[0][0], cabs.Probabilities[0][0])
	}
}

func TestUniformizedAgreesWithCTMCSteadyState(t *testing.T) {
	g := sparse.NewCOO(2, 2)
	g.Add(0, 1, 3)
	g.Add(0, 0, -3)
	g.Add(1, 0, 1)
	g.Add(1, 1, -1)
	cc, err := ctmc.New(g)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Uniformized(cc, 4)
	if err != nil {
		t.Fatal(err)
	}
	piD, err := u.Stationary()
	if err != nil {
		t.Fatal(err)
	}
	piC, err := cc.SteadyState(ctmc.SteadyStateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The uniformized chain's stationary distribution IS the CTMC's.
	if sparse.L1Dist(piD, piC) > 1e-9 {
		t.Errorf("uniformized stationary %v != CTMC steady state %v", piD, piC)
	}
	if _, err := Uniformized(cc, 2); err == nil {
		t.Error("uniformization rate below max exit rate accepted")
	}
}

// Property: TransientN preserves distributions for random stochastic
// matrices.
func TestTransientNStochasticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		m := sparse.NewCOO(n, n)
		for r := 0; r < n; r++ {
			w := make([]float64, n)
			sum := 0.0
			for i := range w {
				w[i] = rng.Float64()
				sum += w[i]
			}
			for i := range w {
				m.Add(r, i, w[i]/sum)
			}
		}
		c, err := New(m)
		if err != nil {
			return false
		}
		pi0 := make([]float64, n)
		pi0[rng.Intn(n)] = 1
		pi, err := c.TransientN(pi0, 1+rng.Intn(30))
		if err != nil {
			return false
		}
		total := 0.0
		for _, p := range pi {
			if p < -1e-12 {
				return false
			}
			total += p
		}
		return math.Abs(total-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(42))}); err != nil {
		t.Fatal(err)
	}
}

func TestErrNoStationaryExposed(t *testing.T) {
	if !errors.Is(ErrNoStationary, ErrNoStationary) {
		t.Fatal("sentinel broken")
	}
}

func TestAccessors(t *testing.T) {
	c := twoState(t, 0.5, 0.5)
	if c.NumStates() != 2 {
		t.Errorf("NumStates = %d", c.NumStates())
	}
	if c.TransitionMatrix().At(0, 1) != 0.5 {
		t.Errorf("matrix access broken")
	}
	if c.IsAbsorbing(0) {
		t.Error("non-absorbing state reported absorbing")
	}
}

func TestStationaryEmpty(t *testing.T) {
	c := &Chain{}
	if _, err := c.Stationary(); err == nil {
		t.Error("empty chain accepted")
	}
}

// The uniformization identity ties the two packages together: the CTMC
// transient distribution equals the Poisson(q·t)-mixture of uniformized
// DTMC n-step distributions. Verifying it for random chains checks the
// CTMC solver and the DTMC power iteration against each other through an
// independent code path.
func TestUniformizationIdentityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		g := sparse.NewCOO(n, n)
		for r := 0; r < n; r++ {
			exit := 0.0
			for c := 0; c < n; c++ {
				if c != r && rng.Float64() < 0.7 {
					rate := rng.Float64() * 3
					g.Add(r, c, rate)
					exit += rate
				}
			}
			if exit == 0 {
				g.Add(r, (r+1)%n, 1)
				exit = 1
			}
			g.Add(r, r, -exit)
		}
		cc, err := ctmc.New(g)
		if err != nil {
			return false
		}
		q := cc.MaxExitRate() * 1.1
		u, err := Uniformized(cc, q)
		if err != nil {
			return false
		}
		pi0 := make([]float64, n)
		pi0[rng.Intn(n)] = 1
		tt := 0.5 + rng.Float64()

		want, err := cc.Transient(pi0, tt)
		if err != nil {
			return false
		}
		// Poisson mixture of DTMC powers, truncated far into the tail.
		got := make([]float64, n)
		vk := append([]float64(nil), pi0...)
		next := make([]float64, n)
		pois := math.Exp(-q * tt)
		for k := 0; k <= 200; k++ {
			for i := range got {
				got[i] += pois * vk[i]
			}
			u.Step(next, vk)
			vk, next = next, vk
			pois *= q * tt / float64(k+1)
		}
		return sparse.L1Dist(got, want) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(77))}); err != nil {
		t.Fatal(err)
	}
}
