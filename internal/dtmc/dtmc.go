// Package dtmc implements discrete-time Markov chain analysis: n-step
// transient distributions, stationary distributions, and absorbing-chain
// analysis via the fundamental matrix.
//
// DTMCs arise in this toolkit in two ways: as the uniformized companion of
// a CTMC (the chain whose powers drive Jensen's method), and as the
// embedded jump chain of a CTMC (the chain the Monte-Carlo simulator
// walks). EmbeddedChain and Uniformized construct both from a ctmc.Chain,
// giving tests and tools an independent route to the same quantities the
// continuous-time solvers produce.
package dtmc

import (
	"errors"
	"fmt"
	"math"

	"guardedop/internal/ctmc"
	"guardedop/internal/sparse"
)

// Chain is a discrete-time Markov chain over states 0..N-1 with a row-
// stochastic transition matrix.
type Chain struct {
	n int
	p *sparse.CSR
}

// rowSumTol bounds the acceptable deviation of a transition-matrix row sum
// from one.
const rowSumTol = 1e-9

// New validates the transition matrix held in the builder and returns the
// chain. Rows must be non-negative and sum to one; an all-zero row is
// rejected (encode an absorbing state as a self-loop with probability one).
func New(p *sparse.COO) (*Chain, error) {
	if p.Rows() != p.Cols() {
		return nil, fmt.Errorf("dtmc: transition matrix must be square, got %dx%d", p.Rows(), p.Cols())
	}
	csr := p.ToCSR()
	n := csr.Rows()
	for r := 0; r < n; r++ {
		sum := 0.0
		bad := -1
		csr.Row(r, func(c int, v float64) {
			sum += v
			if v < 0 && bad < 0 {
				bad = c
			}
		})
		if bad >= 0 {
			return nil, fmt.Errorf("dtmc: negative probability at (%d,%d)", r, bad)
		}
		if math.Abs(sum-1) > rowSumTol {
			return nil, fmt.Errorf("dtmc: row %d sums to %g, want 1", r, sum)
		}
	}
	return &Chain{n: n, p: csr}, nil
}

// NumStates returns the number of states.
func (c *Chain) NumStates() int { return c.n }

// TransitionMatrix returns the transition matrix. The caller must not
// mutate it.
func (c *Chain) TransitionMatrix() *sparse.CSR { return c.p }

// IsAbsorbing reports whether state s transitions only to itself.
func (c *Chain) IsAbsorbing(s int) bool {
	absorbing := true
	c.p.Row(s, func(cc int, v float64) {
		if cc != s && v > 0 {
			absorbing = false
		}
	})
	return absorbing
}

// Step computes one transition: dst = pi * P. dst and pi must not alias.
func (c *Chain) Step(dst, pi []float64) {
	c.p.VecMul(dst, pi)
}

// TransientN returns the distribution after n steps from pi0.
func (c *Chain) TransientN(pi0 []float64, n int) ([]float64, error) {
	if err := c.checkDistribution(pi0); err != nil {
		return nil, err
	}
	if n < 0 {
		return nil, fmt.Errorf("dtmc: negative step count %d", n)
	}
	cur := append([]float64(nil), pi0...)
	next := make([]float64, c.n)
	for i := 0; i < n; i++ {
		c.Step(next, cur)
		cur, next = next, cur
	}
	return cur, nil
}

// ErrNoStationary is returned when power iteration fails to converge,
// typically because the chain is periodic or reducible.
var ErrNoStationary = errors.New("dtmc: power iteration failed to converge (chain may be periodic or reducible)")

// Stationary computes a stationary distribution. For chains up to a few
// hundred states it solves π(P−I) = 0 directly; otherwise it runs damped
// power iteration (the damping handles periodicity).
func (c *Chain) Stationary() ([]float64, error) {
	if c.n == 0 {
		return nil, errors.New("dtmc: empty chain")
	}
	if c.n <= 512 {
		return c.stationaryDirect()
	}
	return c.stationaryPower(1e-13, 500000)
}

func (c *Chain) stationaryDirect() ([]float64, error) {
	n := c.n
	a := sparse.NewDense(n, n)
	for r := 0; r < n; r++ {
		c.p.Row(r, func(cc int, v float64) {
			a.Set(cc, r, v) // transpose of P
		})
	}
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)-1)
	}
	for j := 0; j < n; j++ {
		a.Set(n-1, j, 1)
	}
	b := make([]float64, n)
	b[n-1] = 1
	x, err := sparse.SolveDense(a, b)
	if err != nil {
		return nil, fmt.Errorf("dtmc: direct stationary solve failed: %w", err)
	}
	for i, v := range x {
		if v < -1e-8 {
			return nil, fmt.Errorf("dtmc: stationary solve produced negative probability %g at state %d", v, i)
		}
		if v < 0 {
			x[i] = 0
		}
	}
	sparse.Normalize(x)
	return x, nil
}

func (c *Chain) stationaryPower(tol float64, maxIter int) ([]float64, error) {
	x := make([]float64, c.n)
	for i := range x {
		x[i] = 1 / float64(c.n)
	}
	next := make([]float64, c.n)
	for iter := 0; iter < maxIter; iter++ {
		c.Step(next, x)
		// Damping: average with the previous iterate to break periodicity.
		for i := range next {
			next[i] = 0.5*next[i] + 0.5*x[i]
		}
		if sparse.L1Dist(next, x) < tol {
			return next, nil
		}
		x, next = next, x
	}
	return nil, ErrNoStationary
}

// Absorbing holds absorbing-chain results: B[i][j] is the probability that
// transient state TransientStates[i] is eventually absorbed in
// AbsorbingStates[j], and Steps[i] is the expected number of steps to
// absorption.
type Absorbing struct {
	TransientStates []int
	AbsorbingStates []int
	Probabilities   [][]float64
	Steps           []float64
}

// AbsorbingAnalysis computes absorption probabilities and expected step
// counts via the fundamental matrix N = (I − Q)⁻¹.
func (c *Chain) AbsorbingAnalysis() (*Absorbing, error) {
	var abs, trans []int
	for s := 0; s < c.n; s++ {
		if c.IsAbsorbing(s) {
			abs = append(abs, s)
		} else {
			trans = append(trans, s)
		}
	}
	if len(abs) == 0 {
		return nil, errors.New("dtmc: chain has no absorbing states")
	}
	a := &Absorbing{TransientStates: trans, AbsorbingStates: abs}
	nt := len(trans)
	if nt == 0 {
		return a, nil
	}
	tIdx := make(map[int]int, nt)
	for i, s := range trans {
		tIdx[s] = i
	}
	aIdx := make(map[int]int, len(abs))
	for j, s := range abs {
		aIdx[s] = j
	}
	// I - Q on the transient block; R couples to absorbing states.
	iq := sparse.Identity(nt)
	r := sparse.NewDense(nt, len(abs))
	for i, s := range trans {
		c.p.Row(s, func(cc int, v float64) {
			if ti, ok := tIdx[cc]; ok {
				iq.Set(i, ti, iq.At(i, ti)-v)
			} else {
				r.Set(i, aIdx[cc], v)
			}
		})
	}
	f, err := sparse.FactorLU(iq)
	if err != nil {
		return nil, fmt.Errorf("dtmc: fundamental matrix is singular (some state never absorbs): %w", err)
	}
	b, err := f.SolveMatrix(r)
	if err != nil {
		return nil, err
	}
	a.Probabilities = make([][]float64, nt)
	for i := 0; i < nt; i++ {
		a.Probabilities[i] = append([]float64(nil), b.RowSlice(i)...)
	}
	ones := make([]float64, nt)
	for i := range ones {
		ones[i] = 1
	}
	steps, err := f.Solve(ones)
	if err != nil {
		return nil, err
	}
	a.Steps = steps
	return a, nil
}

func (c *Chain) checkDistribution(pi0 []float64) error {
	if len(pi0) != c.n {
		return fmt.Errorf("dtmc: distribution has length %d, want %d", len(pi0), c.n)
	}
	sum := 0.0
	for i, p := range pi0 {
		if p < -1e-12 || math.IsNaN(p) {
			return fmt.Errorf("dtmc: distribution entry %d is %g", i, p)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("dtmc: distribution sums to %g, want 1", sum)
	}
	return nil
}

// EmbeddedChain extracts the jump chain of a CTMC: from state s the next
// state is chosen with probability rate(s→t)/exitRate(s). Absorbing CTMC
// states become absorbing DTMC states (probability-one self-loops).
func EmbeddedChain(c *ctmc.Chain) (*Chain, error) {
	n := c.NumStates()
	p := sparse.NewCOO(n, n)
	gen := c.Generator()
	for s := 0; s < n; s++ {
		exit := 0.0
		gen.Row(s, func(t int, v float64) {
			if t != s {
				exit += v
			}
		})
		if exit == 0 {
			p.Add(s, s, 1)
			continue
		}
		gen.Row(s, func(t int, v float64) {
			if t != s {
				p.Add(s, t, v/exit)
			}
		})
	}
	return New(p)
}

// Uniformized constructs the uniformized DTMC P = I + Q/q of a CTMC for
// the given uniformization rate q ≥ max|Q_ii| (q > 0).
func Uniformized(c *ctmc.Chain, q float64) (*Chain, error) {
	if q <= 0 || q < c.MaxExitRate() {
		return nil, fmt.Errorf("dtmc: uniformization rate %g below max exit rate %g", q, c.MaxExitRate())
	}
	n := c.NumStates()
	p := sparse.NewCOO(n, n)
	gen := c.Generator()
	for s := 0; s < n; s++ {
		p.Add(s, s, 1)
		gen.Row(s, func(t int, v float64) {
			p.Add(s, t, v/q)
		})
	}
	return New(p)
}
