package reward

import (
	"fmt"

	"guardedop/internal/statespace"
)

// ImpulseStructure assigns impulse rewards to activity completions: each
// completion of a named activity earns a fixed impulse (possibly gated on
// the marking the activity fires from). Impulse rewards capture event
// counts — numbers of acceptance tests, checkpoint establishments,
// messages sent — which rate rewards cannot express.
type ImpulseStructure struct {
	items []impulseItem
}

type impulseItem struct {
	activity string
	impulse  float64
	// when gates the impulse on the source marking index's predicate
	// evaluated against the marking; nil means always.
	when func(stateIdx int, sp *statespace.Space) bool
}

// NewImpulseStructure returns an empty impulse structure.
func NewImpulseStructure() *ImpulseStructure { return &ImpulseStructure{} }

// Add awards impulse on every completion of the named activity.
func (s *ImpulseStructure) Add(activity string, impulse float64) *ImpulseStructure {
	s.items = append(s.items, impulseItem{activity: activity, impulse: impulse})
	return s
}

// AddWhen awards impulse on completions of the named activity that fire
// from a state whose marking satisfies pred. It panics if pred is nil (a
// reward-structure construction bug).
func (s *ImpulseStructure) AddWhen(activity string, impulse float64, pred func(stateIdx int, sp *statespace.Space) bool) *ImpulseStructure {
	if pred == nil {
		panic(fmt.Sprintf("reward: nil impulse predicate for activity %q", activity))
	}
	s.items = append(s.items, impulseItem{activity: activity, impulse: impulse, when: pred})
	return s
}

// Len returns the number of impulse items.
func (s *ImpulseStructure) Len() int { return len(s.items) }

// ImpulseItem is the public view of one impulse assignment, exposed for
// static verification (internal/modelcheck) and diagnostics.
type ImpulseItem struct {
	Activity string
	Impulse  float64
}

// Items returns the structure's impulse assignments in insertion order.
func (s *ImpulseStructure) Items() []ImpulseItem {
	out := make([]ImpulseItem, len(s.items))
	for i, it := range s.items {
		out[i] = ImpulseItem{Activity: it.activity, Impulse: it.impulse}
	}
	return out
}

// rateVector folds the impulse structure into an equivalent rate-reward
// vector: state i earns Σ over transitions leaving i of impulse × rate.
// This is the classical impulse-to-rate conversion for expected-value
// measures (it is exact for expectations, though not for distributions).
func (s *ImpulseStructure) rateVector(sp *statespace.Space) []float64 {
	rates := make([]float64, sp.NumStates())
	for _, tr := range sp.Transitions {
		for _, item := range s.items {
			if item.activity != tr.Activity {
				continue
			}
			if item.when != nil && !item.when(tr.From, sp) {
				continue
			}
			rates[tr.From] += item.impulse * tr.Rate
		}
	}
	return rates
}

// AccumulatedImpulse returns the expected total impulse reward earned over
// [0, t] — for unit impulses, the expected number of activity completions.
func AccumulatedImpulse(sp *statespace.Space, s *ImpulseStructure, t float64) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.AccumulatedReward(sp.Initial, t, s.rateVector(sp))
}

// SteadyStateImpulseRate returns the long-run impulse reward rate (per unit
// time) — for unit impulses, the long-run completion frequency of the
// selected activities.
func SteadyStateImpulseRate(sp *statespace.Space, s *ImpulseStructure) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.SteadyStateReward(s.rateVector(sp), steadyOpts())
}
