package reward_test

import (
	"fmt"
	"log"

	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// Example builds a one-component repairable system and evaluates the three
// reward variables of the package.
func Example() {
	m := san.NewModel("one-component")
	up := m.AddPlace("up", 1)
	down := m.AddPlace("down", 0)
	fail := m.AddTimedActivity("fail", san.ConstRate(0.1)).AddInputArc(up, 1)
	fail.AddCase(san.ConstProb(1)).AddOutputArc(down, 1)
	repair := m.AddTimedActivity("repair", san.ConstRate(0.9)).AddInputArc(down, 1)
	repair.AddCase(san.ConstProb(1)).AddOutputArc(up, 1)

	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		log.Fatal(err)
	}
	avail := reward.NewStructure().Add("up",
		func(mk san.Marking) bool { return mk.Get(up) == 1 }, 1)

	longRun, err := reward.SteadyState(sp, avail)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long-run availability: %.2f\n", longRun)

	repairs := reward.NewImpulseStructure().Add("repair", 1)
	perHour, err := reward.SteadyStateImpulseRate(sp, repairs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repairs per hour: %.3f\n", perHour)

	// Output:
	// long-run availability: 0.90
	// repairs per hour: 0.090
}
