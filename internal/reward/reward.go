// Package reward maps UltraSAN-style reward structures onto generated state
// spaces and evaluates reward variables.
//
// A reward structure is a list of predicate-rate pairs over markings — the
// exact shape of Tables 1 and 2 of the guarded-operation paper. A state's
// reward rate is the sum of the rates of all pairs whose predicate holds in
// its marking. Three reward variables are supported:
//
//   - expected instant-of-time reward at time t:     Σ_s r(s)·π_s(t)
//   - expected accumulated interval-of-time reward:  Σ_s r(s)·∫₀ᵗ π_s(u)du
//   - expected steady-state (instant-of-time) reward: Σ_s r(s)·π_s
package reward

import (
	"errors"
	"fmt"

	"guardedop/internal/ctmc"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// Structure is a rate-reward structure: a list of predicate-rate pairs.
// The zero value is an empty structure with reward zero everywhere.
type Structure struct {
	pairs []pair
}

type pair struct {
	name string
	pred san.Predicate
	rate float64
}

// NewStructure returns an empty reward structure.
func NewStructure() *Structure { return &Structure{} }

// Add appends a predicate-rate pair. The name is used in diagnostics only.
// It returns the structure for chaining, and panics if pred is nil (a
// reward-structure construction bug).
func (s *Structure) Add(name string, pred san.Predicate, rate float64) *Structure {
	if pred == nil {
		panic(fmt.Sprintf("reward: nil predicate for pair %q", name))
	}
	s.pairs = append(s.pairs, pair{name: name, pred: pred, rate: rate})
	return s
}

// Len returns the number of predicate-rate pairs.
func (s *Structure) Len() int { return len(s.pairs) }

// Rate returns the reward rate of a single marking: the sum of rates of all
// pairs whose predicate holds.
func (s *Structure) Rate(mk san.Marking) float64 {
	total := 0.0
	for _, p := range s.pairs {
		if p.pred(mk) {
			total += p.rate
		}
	}
	return total
}

// RateVector evaluates the structure on every state of the space.
func (s *Structure) RateVector(sp *statespace.Space) []float64 {
	rates := make([]float64, sp.NumStates())
	for i, mk := range sp.States {
		rates[i] = s.Rate(mk)
	}
	return rates
}

// errNilSpace guards the evaluation entry points.
var errNilSpace = errors.New("reward: nil state space")

// InstantOfTime returns the expected instant-of-time reward at time t,
// starting from the space's initial distribution.
func InstantOfTime(sp *statespace.Space, s *Structure, t float64) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.TransientReward(sp.Initial, t, s.RateVector(sp))
}

// Accumulated returns the expected accumulated interval-of-time reward over
// [0, t], starting from the space's initial distribution.
func Accumulated(sp *statespace.Space, s *Structure, t float64) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.AccumulatedReward(sp.Initial, t, s.RateVector(sp))
}

// SteadyState returns the expected steady-state reward. The space's chain
// must be ergodic.
func SteadyState(sp *statespace.Space, s *Structure) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.SteadyStateReward(s.RateVector(sp), steadyOpts())
}

// steadyOpts is the shared steady-state solver configuration.
func steadyOpts() ctmc.SteadyStateOptions { return ctmc.SteadyStateOptions{} }

// AccumulatedInterval returns the expected accumulated reward over
// [t1, t2] (0 ≤ t1 ≤ t2), as the difference of two interval-of-time
// rewards anchored at zero.
func AccumulatedInterval(sp *statespace.Space, s *Structure, t1, t2 float64) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	if t1 < 0 || t2 < t1 {
		return 0, fmt.Errorf("reward: invalid interval [%g, %g]", t1, t2)
	}
	hi, err := Accumulated(sp, s, t2)
	if err != nil {
		return 0, err
	}
	if t1 == 0 {
		return hi, nil
	}
	lo, err := Accumulated(sp, s, t1)
	if err != nil {
		return 0, err
	}
	return hi - lo, nil
}

// UntilAbsorption returns the expected total reward accumulated over the
// chain's whole lifetime (the chain must be absorbing).
func UntilAbsorption(sp *statespace.Space, s *Structure) (float64, error) {
	if sp == nil {
		return 0, errNilSpace
	}
	return sp.Chain.AccumulatedUntilAbsorption(sp.Initial, s.RateVector(sp))
}

// StateProbability returns the transient probability at time t of the set of
// states satisfying pred — the common "expected instant-of-time reward with
// rate one" idiom of the paper's Table 1.
func StateProbability(sp *statespace.Space, pred san.Predicate, t float64) (float64, error) {
	s := NewStructure().Add("indicator", pred, 1)
	return InstantOfTime(sp, s, t)
}
