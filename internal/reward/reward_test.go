package reward

import (
	"math"
	"testing"

	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// buildCycle returns a two-state cycle model and its generated space.
func buildCycle(t *testing.T, a, b float64) (*statespace.Space, *san.Place, *san.Place) {
	t.Helper()
	m := san.NewModel("cycle")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	fwd := m.AddTimedActivity("fwd", san.ConstRate(a)).AddInputArc(p0, 1)
	fwd.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	bwd := m.AddTimedActivity("bwd", san.ConstRate(b)).AddInputArc(p1, 1)
	bwd.AddCase(san.ConstProb(1)).AddOutputArc(p0, 1)
	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sp, p0, p1
}

func TestStructureRate(t *testing.T) {
	m := san.NewModel("s")
	p := m.AddPlace("p", 1)
	q := m.AddPlace("q", 2)
	s := NewStructure().
		Add("hasP", func(mk san.Marking) bool { return mk.Get(p) > 0 }, 1.5).
		Add("hasQ2", func(mk san.Marking) bool { return mk.Get(q) == 2 }, 2).
		Add("never", func(mk san.Marking) bool { return false }, 100)
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if got := s.Rate(m.InitialMarking()); got != 3.5 {
		t.Errorf("Rate = %v, want 3.5 (overlapping predicates sum)", got)
	}
}

func TestNilPredicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nil predicate did not panic")
		}
	}()
	NewStructure().Add("bad", nil, 1)
}

func TestInstantOfTimeMatchesAnalytic(t *testing.T) {
	a, b := 3.0, 1.0
	sp, _, p1 := buildCycle(t, a, b)
	s := NewStructure().Add("inP1", func(mk san.Marking) bool { return mk.Get(p1) == 1 }, 1)
	for _, tt := range []float64{0, 0.1, 1, 10} {
		got, err := InstantOfTime(sp, s, tt)
		if err != nil {
			t.Fatal(err)
		}
		want := a / (a + b) * (1 - math.Exp(-(a+b)*tt))
		if math.Abs(got-want) > 1e-10 {
			t.Errorf("t=%v: instant reward = %v, want %v", tt, got, want)
		}
	}
}

func TestAccumulatedMatchesAnalytic(t *testing.T) {
	a, b := 2.0, 5.0
	sp, _, p1 := buildCycle(t, a, b)
	s := NewStructure().Add("inP1", func(mk san.Marking) bool { return mk.Get(p1) == 1 }, 1)
	tt := 3.0
	sum := a + b
	want := a/sum*tt - a/(sum*sum)*(1-math.Exp(-sum*tt))
	got, err := Accumulated(sp, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("accumulated = %v, want %v", got, want)
	}
}

func TestSteadyStateMatchesAnalytic(t *testing.T) {
	a, b := 3.0, 1.0
	sp, _, p1 := buildCycle(t, a, b)
	s := NewStructure().Add("inP1", func(mk san.Marking) bool { return mk.Get(p1) == 1 }, 2)
	got, err := SteadyState(sp, s)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * a / (a + b)
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("steady reward = %v, want %v", got, want)
	}
}

func TestStateProbability(t *testing.T) {
	sp, p0, _ := buildCycle(t, 1, 1)
	got, err := StateProbability(sp, func(mk san.Marking) bool { return mk.Get(p0) == 1 }, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("P(p0 at 0) = %v, want 1", got)
	}
}

func TestNilSpaceRejected(t *testing.T) {
	s := NewStructure()
	if _, err := InstantOfTime(nil, s, 1); err == nil {
		t.Error("InstantOfTime accepted nil space")
	}
	if _, err := Accumulated(nil, s, 1); err == nil {
		t.Error("Accumulated accepted nil space")
	}
	if _, err := SteadyState(nil, s); err == nil {
		t.Error("SteadyState accepted nil space")
	}
}

func TestEmptyStructureIsZero(t *testing.T) {
	sp, _, _ := buildCycle(t, 1, 1)
	got, err := InstantOfTime(sp, NewStructure(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("empty structure reward = %v, want 0", got)
	}
}

// Negative rates express the subtraction idiom of the paper's ∫τh(τ)dτ
// reward structure (rate 1 on one set, -1 on a subset).
func TestNegativeRatePairs(t *testing.T) {
	sp, p0, p1 := buildCycle(t, 1, 1)
	s := NewStructure().
		Add("all", func(mk san.Marking) bool { return true }, 1).
		Add("minusP1", func(mk san.Marking) bool { return mk.Get(p1) == 1 }, -1)
	got, err := SteadyState(sp, s)
	if err != nil {
		t.Fatal(err)
	}
	// all(1) - inP1(1) = P(p0) = 0.5 at steady state.
	if math.Abs(got-0.5) > 1e-10 {
		t.Errorf("steady reward = %v, want 0.5", got)
	}
	_ = p0
}

func TestAccumulatedInterval(t *testing.T) {
	a, b := 2.0, 5.0
	sp, _, p1 := buildCycle(t, a, b)
	s := NewStructure().Add("inP1", func(mk san.Marking) bool { return mk.Get(p1) == 1 }, 1)
	t1, t2 := 1.0, 3.0
	full, err := Accumulated(sp, s, t2)
	if err != nil {
		t.Fatal(err)
	}
	head, err := Accumulated(sp, s, t1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := AccumulatedInterval(sp, s, t1, t2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-(full-head)) > 1e-12 {
		t.Errorf("interval = %v, want %v", got, full-head)
	}
	if _, err := AccumulatedInterval(sp, s, 3, 1); err == nil {
		t.Error("reversed interval accepted")
	}
	if _, err := AccumulatedInterval(nil, s, 0, 1); err == nil {
		t.Error("nil space accepted")
	}
	zeroAnchor, err := AccumulatedInterval(sp, s, 0, t2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(zeroAnchor-full) > 1e-12 {
		t.Errorf("zero-anchored interval = %v, want %v", zeroAnchor, full)
	}
}

func TestUntilAbsorption(t *testing.T) {
	// One-way model: p0 --(rate 4)--> p1 (absorbing). Expected time with
	// reward 1 on p0 is 1/4.
	m := san.NewModel("oneway")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	act := m.AddTimedActivity("go", san.ConstRate(4)).AddInputArc(p0, 1)
	act.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewStructure().Add("inP0", func(mk san.Marking) bool { return mk.Get(p0) == 1 }, 1)
	got, err := UntilAbsorption(sp, s)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("lifetime reward = %v, want 0.25", got)
	}
	if _, err := UntilAbsorption(nil, s); err == nil {
		t.Error("nil space accepted")
	}
}
