package reward

import (
	"math"
	"testing"

	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

// poissonCounter builds a model whose single activity fires at rate r
// without changing the marking: a pure Poisson event counter that only
// impulse rewards can observe.
func poissonCounter(t *testing.T, r float64) *statespace.Space {
	t.Helper()
	m := san.NewModel("counter")
	p := m.AddPlace("p", 1)
	tick := m.AddTimedActivity("tick", san.ConstRate(r)).
		AddInputGate("g", func(mk san.Marking) bool { return mk.Get(p) == 1 }, nil)
	tick.AddCase(san.ConstProb(1))
	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

func TestAccumulatedImpulseCountsPoissonEvents(t *testing.T) {
	r := 3.5
	sp := poissonCounter(t, r)
	is := NewImpulseStructure().Add("tick", 1)
	for _, tt := range []float64{0, 1, 10} {
		got, err := AccumulatedImpulse(sp, is, tt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-r*tt) > 1e-9 {
			t.Errorf("E[N(%v)] = %v, want %v", tt, got, r*tt)
		}
	}
}

func TestImpulseSelfLoopRetainedInTransitions(t *testing.T) {
	sp := poissonCounter(t, 2)
	if len(sp.Transitions) != 1 {
		t.Fatalf("transitions = %v, want the self-loop retained", sp.Transitions)
	}
	tr := sp.Transitions[0]
	if tr.From != tr.To || tr.Activity != "tick" || tr.Rate != 2 {
		t.Errorf("transition = %+v", tr)
	}
	// And the CTMC must NOT see the self-loop.
	if !sp.Chain.IsAbsorbing(0) {
		t.Error("self-loop leaked into the CTMC generator")
	}
}

func TestSteadyStateImpulseRateTwoState(t *testing.T) {
	// Cycle 0 <-> 1 with rates a, b: long-run completion rate of "fwd" is
	// pi_0 * a = ab/(a+b).
	m := san.NewModel("cycle")
	p0 := m.AddPlace("p0", 1)
	p1 := m.AddPlace("p1", 0)
	a, b := 3.0, 1.0
	fwd := m.AddTimedActivity("fwd", san.ConstRate(a)).AddInputArc(p0, 1)
	fwd.AddCase(san.ConstProb(1)).AddOutputArc(p1, 1)
	bwd := m.AddTimedActivity("bwd", san.ConstRate(b)).AddInputArc(p1, 1)
	bwd.AddCase(san.ConstProb(1)).AddOutputArc(p0, 1)
	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := SteadyStateImpulseRate(sp, NewImpulseStructure().Add("fwd", 1))
	if err != nil {
		t.Fatal(err)
	}
	want := a * b / (a + b)
	if math.Abs(got-want) > 1e-10 {
		t.Errorf("completion rate = %v, want %v", got, want)
	}
}

func TestImpulseWeightsAndGating(t *testing.T) {
	sp := poissonCounter(t, 4)
	// Impulse 2.5 per completion, gated to always-true, plus a never-true
	// gate that must contribute nothing.
	is := NewImpulseStructure().
		AddWhen("tick", 2.5, func(int, *statespace.Space) bool { return true }).
		AddWhen("tick", 100, func(int, *statespace.Space) bool { return false })
	got, err := AccumulatedImpulse(sp, is, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.5*4*2) > 1e-9 {
		t.Errorf("gated impulse = %v, want %v", got, 2.5*4*2)
	}
}

func TestImpulseUnknownActivityIsZero(t *testing.T) {
	sp := poissonCounter(t, 4)
	got, err := AccumulatedImpulse(sp, NewImpulseStructure().Add("nonexistent", 1), 5)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("unknown activity impulse = %v, want 0", got)
	}
}

func TestImpulseNilSpaceAndNilPredicate(t *testing.T) {
	is := NewImpulseStructure().Add("x", 1)
	if _, err := AccumulatedImpulse(nil, is, 1); err == nil {
		t.Error("nil space accepted")
	}
	if _, err := SteadyStateImpulseRate(nil, is); err == nil {
		t.Error("nil space accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("nil predicate did not panic")
		}
	}()
	NewImpulseStructure().AddWhen("x", 1, nil)
}

func TestImpulseLen(t *testing.T) {
	is := NewImpulseStructure().Add("a", 1).Add("b", 2)
	if is.Len() != 2 {
		t.Errorf("Len = %d, want 2", is.Len())
	}
}
