package parametric

import (
	"fmt"
	"math"
	"math/big"
)

// Evaluator is one closed-form measure m(t) = Σ_c e^{λ_c t}·P_c(t) with
// per-cluster polynomials P_c(t) = Σ_k S_{c,k}·t^k. Both the pointwise
// value m(t) and the accumulated value ∫₀ᵗ m(u)du evaluate in a few
// dozen float64 operations with no cancellation-prone branches.
type Evaluator struct {
	clusters []evalCluster
	tMax     float64
}

type evalCluster struct {
	base float64   // λ_c ≤ 0
	coef []float64 // S_k, k = 0..K
	mag  float64   // Σ|S_k|·teffᵏ, the float64 evaluation magnitude
}

// expUnderflow is the exponent below which e^z is exactly zero in
// float64; clusters that deep in the transient contribute nothing
// pointwise and only their total integral when accumulated.
const expUnderflow = -745.0

// evalTarget is the per-cluster evaluation magnitude Σ|S_k|·teffᵏ above
// which Expansion tries to merge the cluster into a neighbor: float64
// evaluation noise is roughly this magnitude times machine epsilon, so
// 1e3 keeps it near 1e-13 absolute.
const evalTarget = 1e3

// coefBudget is the hard cap on the evaluation magnitude when no merge
// is possible; beyond it the noise would exceed the 1e-9 contract for
// O(1) probability measures and the expansion is refused.
const coefBudget = 1e6

// maxClusterSpan caps width·tMax for one merged cluster: the
// within-cluster Taylor argument must stay small enough for a short
// series (span 2 still converges below 1e-22 by order ~30).
const maxClusterSpan = 2.0

// taylorTail is the absolute remainder budget for the within-cluster
// Taylor truncation over [0, tMax].
const taylorTail = 1e-15

// Expansion projects the decomposition onto one reward vector r
// (indexed by original state) and returns its closed-form evaluator.
func (d *Decomposition) Expansion(r []float64) (*Evaluator, error) {
	if len(r) != d.n {
		return nil, fmt.Errorf("%w: reward vector has %d entries for %d states", ErrStructure, len(r), d.n)
	}
	// Per-index polynomial residues β_{j,a} = (u·Nᵃ)ⱼ·(wⱼ·r)/a!, all in
	// big arithmetic: the raw residues straddle huge cancelling
	// magnitudes whenever eigenvalues nearly collide, and only the
	// clustered sums below are float64-safe.
	rp := make([]*big.Float, d.n)
	for i := 0; i < d.n; i++ {
		rp[i] = bf(r[d.perm[i]])
	}
	wr := make([]*big.Float, d.n)
	t := newBF()
	for i := 0; i < d.n; i++ {
		s := newBF()
		for j := 0; j < d.n; j++ {
			if d.w[i][j].Sign() == 0 || rp[j].Sign() == 0 {
				continue
			}
			s.Add(s, t.Mul(d.w[i][j], rp[j]))
		}
		wr[i] = s
	}
	beta := make([][]*big.Float, len(d.uPoly))
	afact := 1.0
	for a := range d.uPoly {
		if a > 0 {
			afact *= float64(a)
		}
		beta[a] = make([]*big.Float, d.n)
		for j := 0; j < d.n; j++ {
			b := newBF().Mul(d.uPoly[a][j], wr[j])
			beta[a][j] = b.Quo(b, bf(afact))
		}
	}

	// Working copy of the eigenvalue clusters, kept in ascending-λ order.
	// Clusters whose expanded polynomial is too large for clean float64
	// evaluation are merged with their nearest neighbor: a large
	// magnitude means near-degenerate residues cancelling ACROSS the
	// cluster boundary, and merging moves that cancellation back into
	// exact big-float arithmetic.
	groups := make([]clusterSpec, len(d.clusters))
	copy(groups, d.clusters)
	expanded := make([]*evalCluster, len(groups))
	for {
		worst, worstMag := -1, evalTarget
		for gi := range groups {
			if expanded[gi] == nil {
				ec, mag, err := d.expandCluster(groups[gi], beta)
				if err != nil {
					return nil, err
				}
				ec.mag = mag
				expanded[gi] = ec
			}
			if expanded[gi].mag > worstMag {
				worst, worstMag = gi, expanded[gi].mag
			}
		}
		if worst < 0 {
			break
		}
		// Merge toward the closer neighbor, respecting the Taylor span
		// cap. If neither side can absorb it, the expansion stands only
		// if it is still inside the hard budget.
		gi := worst
		cand := -1
		candGap := math.Inf(1)
		lf := func(g clusterSpec) (lo, hi float64) { return g.base - g.width, g.base }
		for _, nb := range []int{gi - 1, gi + 1} {
			if nb < 0 || nb >= len(groups) {
				continue
			}
			a, b := groups[gi], groups[nb]
			aLo, aHi := lf(a)
			bLo, bHi := lf(b)
			lo := math.Min(aLo, bLo)
			hi := math.Max(aHi, bHi)
			if (hi-lo)*d.tMax > maxClusterSpan {
				continue
			}
			gap := math.Abs(b.base - a.base)
			if gap < candGap {
				cand, candGap = nb, gap
			}
		}
		if cand < 0 {
			if worstMag > coefBudget {
				return nil, fmt.Errorf("%w: cluster polynomial magnitude %g exceeds budget and cannot merge further", ErrUnstable, worstMag)
			}
			break
		}
		lo2, hi2 := gi, cand
		if lo2 > hi2 {
			lo2, hi2 = hi2, lo2
		}
		merged := clusterSpec{
			base:    math.Max(groups[lo2].base, groups[hi2].base),
			members: append(append([]int(nil), groups[lo2].members...), groups[hi2].members...),
		}
		merged.width = merged.base - math.Min(groups[lo2].base-groups[lo2].width, groups[hi2].base-groups[hi2].width)
		groups = append(groups[:lo2], append([]clusterSpec{merged}, groups[hi2+1:]...)...)
		expanded = append(expanded[:lo2], append([]*evalCluster{nil}, expanded[hi2+1:]...)...)
	}

	ev := &Evaluator{tMax: d.tMax}
	for _, ec := range expanded {
		ev.clusters = append(ev.clusters, *ec)
	}
	return ev, nil
}

// expandCluster computes one cluster's polynomial coefficients S_k in
// big arithmetic and reports the float64 evaluation magnitude
// Σ|S_k|·teffᵏ, where teff ends where e^{λ_c t} underflows (the
// polynomial is never evaluated pointwise beyond that).
func (d *Decomposition) expandCluster(c clusterSpec, beta [][]*big.Float) (*evalCluster, float64, error) {
	base := bf(c.base)
	teff := d.tMax
	if c.base < 0 {
		if cut := -expUnderflow / -c.base; cut < teff {
			teff = cut
		}
	}
	// Member j contributes e^{δλⱼt}·Σₐ β_{j,a}·tᵃ; the cluster
	// coefficient is S_k = Σⱼ Σₐ β_{j,a}·δλⱼ^{k−a}/(k−a)!. The e^{δλt}
	// truncation at Taylor order l leaves a remainder below
	// B·(width·tMax)^{l+1}/(l+1)! with B = Σ|β|·teffᵃ.
	bMag := 0.0
	for _, j := range c.members {
		ta := 1.0
		for a := range beta {
			f, _ := new(big.Float).Abs(beta[a][j]).Float64()
			bMag += f * ta
			ta *= teff
		}
	}
	wt := c.width * d.tMax
	if wt > maxClusterSpan {
		return nil, 0, fmt.Errorf("%w: cluster span %g·tMax too wide for a short Taylor series", ErrUnstable, c.width)
	}
	taylor := 0
	remainder := bMag * wt
	for remainder > taylorTail {
		if taylor >= maxTaylorOrder {
			return nil, 0, fmt.Errorf("%w: Taylor remainder %g after order %d", ErrUnstable, remainder, maxTaylorOrder)
		}
		taylor++
		remainder *= wt / float64(taylor+1)
	}
	kMax := taylor + len(beta) - 1
	skBig := make([]*big.Float, kMax+1)
	for k := range skBig {
		skBig[k] = newBF()
	}
	scratch := newBF()
	for _, j := range c.members {
		dl := newBF().Sub(d.lambda[j], base)
		for a := range beta {
			if beta[a][j].Sign() == 0 {
				continue
			}
			pw := newBF().Set(beta[a][j])
			skBig[a].Add(skBig[a], pw)
			for l := 1; a+l <= kMax; l++ {
				pw.Mul(pw, scratch.Quo(dl, bf(float64(l))))
				skBig[a+l].Add(skBig[a+l], pw)
			}
		}
	}
	coef := make([]float64, len(skBig))
	for k, s := range skBig {
		f, _ := s.Float64()
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, 0, fmt.Errorf("%w: non-finite cluster coefficient", ErrUnstable)
		}
		coef[k] = f
	}
	mag, tk := 0.0, 1.0
	for _, s := range coef {
		mag += math.Abs(s) * tk
		tk *= teff
	}
	if math.IsNaN(mag) {
		return nil, 0, fmt.Errorf("%w: non-finite cluster polynomial magnitude", ErrUnstable)
	}
	return &evalCluster{base: c.base, coef: coef}, mag, nil
}

// At evaluates m(t).
func (e *Evaluator) At(t float64) (float64, error) {
	if err := e.checkT(t); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range e.clusters {
		c := &e.clusters[i]
		z := c.base * t
		if z < expUnderflow {
			continue
		}
		p := 0.0
		for k := len(c.coef) - 1; k >= 0; k-- {
			p = p*t + c.coef[k]
		}
		sum += math.Exp(z) * p
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		return 0, fmt.Errorf("%w: non-finite evaluation at t=%g", ErrUnstable, t)
	}
	return sum, nil
}

// IntAt evaluates ∫₀ᵗ m(u) du.
func (e *Evaluator) IntAt(t float64) (float64, error) {
	if err := e.checkT(t); err != nil {
		return 0, err
	}
	sum := 0.0
	for i := range e.clusters {
		c := &e.clusters[i]
		for k, s := range c.coef {
			if s == 0 {
				continue
			}
			sum += s * intExpPoly(c.base, t, k)
		}
	}
	if math.IsNaN(sum) || math.IsInf(sum, 0) {
		return 0, fmt.Errorf("%w: non-finite accumulated evaluation at t=%g", ErrUnstable, t)
	}
	return sum, nil
}

func (e *Evaluator) checkT(t float64) error {
	if math.IsNaN(t) || t < 0 || t > e.tMax*(1+1e-9) {
		return fmt.Errorf("%w: t=%g outside validated horizon [0, %g]", ErrOutOfDomain, t, e.tMax)
	}
	return nil
}

// kummerSwitch splits the two I_k regimes. Below it the confluent
// series e^{λt}·M(1, k+2, |λ|t) is used (safe: M ≲ e^400/400 ≈ 1e171
// stays in range); above it the complementary form with a negligible-
// by-construction tail takes over.
const kummerSwitch = 400.0

// intExpPoly returns I_k(λ, t) = ∫₀ᵗ uᵏ·e^{λu} du for λ ≤ 0, k ≥ 0.
//
// Every branch sums only positive terms, so the result carries full
// float64 relative accuracy across the whole (λt, k) range — unlike the
// textbook recurrences in either direction, which cancel catastrophically
// once |λt| ~ k.
func intExpPoly(lambda, t float64, k int) float64 {
	if t == 0 {
		return 0
	}
	if lambda == 0 {
		return math.Pow(t, float64(k+1)) / float64(k+1)
	}
	w := -lambda * t
	if w < kummerSwitch {
		// Substituting u = t·s and applying Kummer's transformation:
		//   I_k = t^{k+1}/(k+1) · e^{-w} · M(1, k+2, w)
		// with M(1, k+2, w) = Σ_m w^m / ((k+2)(k+3)…(k+1+m)), an
		// all-positive series whose terms eventually decay geometrically.
		m := 1.0
		term := 1.0
		for j := 0; ; j++ {
			term *= w / float64(k+2+j)
			m += term
			if term < 1e-18*m {
				break
			}
		}
		return math.Pow(t, float64(k+1)) / float64(k+1) * math.Exp(-w) * m
	}
	// Deep decay: I_k = k!/|λ|^{k+1} − e^{-w}·Σ_j (k!/(k−j)!)·t^{k−j}/|λ|^{j+1}.
	// Written in powers of t/w (= 1/|λ|) to stay far from float64
	// overflow for any k ≤ 60. The boundary sum is below e^{-400}·k!·k
	// relative to the leading term, so the subtraction loses no digits.
	tw := t / w // = 1/|λ|
	kfact := 1.0
	powTW := tw
	for j := 1; j <= k; j++ {
		kfact *= float64(j)
		powTW *= tw
	}
	full := kfact * powTW // k!/|λ|^{k+1}
	// Boundary term j is (k!/(k−j)!)·t^{k−j}/|λ|^{j+1} = (k!/(k−j)!)·t^{k+1}/w^{j+1}.
	tail := 0.0
	fall := 1.0 // k!/(k−j)!
	tPow := math.Pow(t, float64(k+1))
	wInv := 1.0 / w
	wPow := wInv
	for j := 0; j <= k; j++ {
		tail += fall * tPow * wPow
		fall *= float64(k - j)
		wPow *= wInv
	}
	return full - math.Exp(-w)*tail
}
