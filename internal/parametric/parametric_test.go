package parametric

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"guardedop/internal/mdcd"
	"guardedop/internal/sparse"
)

// agree is the public equivalence contract: 1e-9 relative with a small
// absolute floor for quantities that are themselves at round-off scale.
func agree(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12
}

func buildModels(t *testing.T, p mdcd.Params) (*mdcd.RMGd, *mdcd.RMNd, *mdcd.RMNd) {
	t.Helper()
	gd, err := mdcd.BuildRMGd(p)
	if err != nil {
		t.Fatal(err)
	}
	ndNew, err := mdcd.BuildRMNd(p, p.MuNew)
	if err != nil {
		t.Fatal(err)
	}
	ndOld, err := mdcd.BuildRMNd(p, p.MuOld)
	if err != nil {
		t.Fatal(err)
	}
	return gd, ndNew, ndOld
}

func checkSystemAgainstNumeric(t *testing.T, p mdcd.Params, phis []float64) {
	t.Helper()
	gd, ndNew, ndOld := buildModels(t, p)
	sys, err := NewSystem(p, gd, ndNew, ndOld)
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}

	// Reference values come from the shared-propagation series engine:
	// it is the most accurate of the cheap numeric routes (~3e-10
	// relative; per-point auto solves route large q·t through
	// scaling-and-squaring expm, whose ~25 squarings cost ~1e-9 on
	// their own and would contaminate a 1e-9 comparison).
	want, err := gd.MeasuresSeries(phis)
	if err != nil {
		t.Fatal(err)
	}
	wantNewS, err := ndNew.NoFailureProbabilitySeries(phis)
	if err != nil {
		t.Fatal(err)
	}
	wantOldS, err := ndOld.NoFailureProbabilitySeries(phis)
	if err != nil {
		t.Fatal(err)
	}
	for pi, phi := range phis {
		got, err := sys.GdMeasures(phi)
		if err != nil {
			t.Fatalf("GdMeasures(%g): %v", phi, err)
		}
		w := want[pi]
		// MeanDetectionTime is deliberately absent: it is a ratio of a
		// cancelling difference of the fields below, so a relative bound
		// on it is meaningless at small phi where the difference is at
		// round-off scale in both engines.
		fields := []struct {
			name     string
			got, ref float64
		}{
			{"IntH", got.IntH, w.IntH},
			{"IntTauH", got.IntTauH, w.IntTauH},
			{"IntHF", got.IntHF, w.IntHF},
			{"PA1", got.PA1, w.PA1},
			{"PUndetectedFailure", got.PUndetectedFailure, w.PUndetectedFailure},
			{"AccDetected", got.AccDetected, w.AccDetected},
		}
		for _, f := range fields {
			// Interval measures scale like θ, so the absolute floor for
			// them rides on the relative term; the shared helper's 1e-12
			// floor only matters for near-zero probabilities.
			if !agree(f.got, f.ref) {
				t.Errorf("phi=%g %s: parametric %.15g vs numeric %.15g (rel %.3g)",
					phi, f.name, f.got, f.ref, math.Abs(f.got-f.ref)/math.Max(math.Abs(f.ref), 1e-300))
			}
		}
		if pn, err := sys.NoFailureNew(phi); err != nil || !agree(pn, wantNewS[pi]) {
			t.Errorf("phi=%g NoFailureNew: parametric %.15g vs numeric %.15g (err %v)", phi, pn, wantNewS[pi], err)
		}
		if po, err := sys.NoFailureOld(phi); err != nil || !agree(po, wantOldS[pi]) {
			t.Errorf("phi=%g NoFailureOld: parametric %.15g vs numeric %.15g (err %v)", phi, po, wantOldS[pi], err)
		}
	}
}

// TestSystemMatchesNumericPaperGrid sweeps the paper's 50-point φ grid
// (plus the exact endpoints and a point deep in the fast transient) at
// the paper's parameterization.
func TestSystemMatchesNumericPaperGrid(t *testing.T) {
	p := mdcd.DefaultParams()
	phis := []float64{0, 1e-3, 1, p.Theta}
	for i := 0; i <= 50; i++ {
		phis = append(phis, p.Theta*float64(i)/50)
	}
	checkSystemAgainstNumeric(t, p, phis)
}

// TestSystemMatchesNumericRandomized cross-validates on randomized
// in-domain parameter sets spanning the documented domain.
func TestSystemMatchesNumericRandomized(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized sweep skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(8))
	logU := func(lo, hi float64) float64 {
		return lo * math.Exp(rng.Float64()*math.Log(hi/lo))
	}
	for trial := 0; trial < 12; trial++ {
		p := mdcd.DefaultParams()
		// q·θ is kept within ~1e8, comparable to the paper's 2.4e7: the
		// numeric REFERENCE (auto → expm at these q·t) loses ~1e-16 per
		// squaring and would itself blow the 1e-9 budget far beyond that.
		p.Theta = logU(1e2, 3e4)
		p.Lambda = logU(1e1, 3e3)
		p.MuNew = logU(1e-7, 1e-3)
		p.MuOld = logU(1e-10, 1e-5)
		p.Coverage = 0.5 + 0.499*rng.Float64()
		p.PExt = 0.05 + 0.9*rng.Float64()
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated invalid params: %v", trial, err)
		}
		phis := []float64{0, p.Theta * 1e-4, p.Theta}
		for i := 0; i < 7; i++ {
			phis = append(phis, p.Theta*rng.Float64())
		}
		t.Logf("trial %d: theta=%g lambda=%g muNew=%g muOld=%g c=%g pExt=%g",
			trial, p.Theta, p.Lambda, p.MuNew, p.MuOld, p.Coverage, p.PExt)
		checkSystemAgainstNumeric(t, p, phis)
	}
}

// TestCheckDomainBounds pins the validated-domain boundary: parameter
// sets that pass mdcd validation but sit outside the closed-form domain
// must be rejected with ErrOutOfDomain (deterministically, at build).
func TestCheckDomainBounds(t *testing.T) {
	in := mdcd.DefaultParams()
	if err := CheckDomain(in); err != nil {
		t.Fatalf("paper params rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*mdcd.Params)
	}{
		{"huge theta", func(p *mdcd.Params) { p.Theta = 2e6 }},
		{"huge lambda", func(p *mdcd.Params) { p.Lambda = 2e5 }},
		{"fast muNew", func(p *mdcd.Params) { p.MuNew = 0.5 }},
		{"fast muOld", func(p *mdcd.Params) { p.MuOld = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := mdcd.DefaultParams()
			tc.mutate(&p)
			if err := p.Validate(); err != nil {
				t.Fatalf("case must stay mdcd-valid to prove the domain check is the rejector: %v", err)
			}
			if err := CheckDomain(p); !errors.Is(err, ErrOutOfDomain) {
				t.Fatalf("got %v, want ErrOutOfDomain", err)
			}
			gd, ndNew, ndOld := buildModels(t, p)
			if _, err := NewSystem(p, gd, ndNew, ndOld); !errors.Is(err, ErrOutOfDomain) {
				t.Fatalf("NewSystem: got %v, want ErrOutOfDomain", err)
			}
		})
	}
}

// TestEvaluatorRejectsOutOfRangeT pins the horizon guard: queries past
// the decomposition's validated horizon take the typed error path (and
// thus the numeric fallback) instead of extrapolating the Taylor series.
func TestEvaluatorRejectsOutOfRangeT(t *testing.T) {
	p := mdcd.DefaultParams()
	gd, ndNew, ndOld := buildModels(t, p)
	sys, err := NewSystem(p, gd, ndNew, ndOld)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{-1, p.Theta * 1.5, math.NaN()} {
		if _, err := sys.GdMeasures(bad); !errors.Is(err, ErrOutOfDomain) {
			t.Errorf("GdMeasures(%g): got %v, want ErrOutOfDomain", bad, err)
		}
		if _, err := sys.NoFailureNew(bad); !errors.Is(err, ErrOutOfDomain) {
			t.Errorf("NoFailureNew(%g): got %v, want ErrOutOfDomain", bad, err)
		}
	}
}

// TestIntExpPolyKernel checks the accumulated-exponential kernel against
// closed forms across its three regimes (λ=0, confluent series, deep
// decay) and at the regime seam.
func TestIntExpPolyKernel(t *testing.T) {
	relOK := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-13*math.Max(math.Abs(want), 1e-300)
	}
	// λ = 0: pure monomial integral.
	if got := intExpPoly(0, 2, 3); !relOK(got, 4.0) {
		t.Errorf("I_3(0, 2) = %.17g, want 4", got)
	}
	// k = 0: (1 - e^{λt})/|λ| exactly, any regime.
	for _, c := range []struct{ lambda, t float64 }{
		{-1e-8, 1e4}, {-2, 1}, {-0.5, 700}, {-1, 1e4}, {-1320, 1e4}, {-4e-5, 1e7},
	} {
		want := (1 - math.Exp(c.lambda*c.t)) / -c.lambda
		if got := intExpPoly(c.lambda, c.t, 0); !relOK(got, want) {
			t.Errorf("I_0(%g, %g) = %.17g, want %.17g", c.lambda, c.t, got, want)
		}
	}
	// k = 1: ∫ u e^{λu} = e^{-w}·(e^w − 1 − w)/λ², with the parenthesis
	// via expm1 so the reference itself does not cancel at small w.
	relOK1 := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-12*math.Max(math.Abs(want), 1e-300)
	}
	for _, c := range []struct{ lambda, t float64 }{
		{-1e-6, 1e4}, {-3, 2}, {-0.041, 9900}, {-0.039, 9900},
	} {
		w := -c.lambda * c.t
		want := math.Exp(-w) * (math.Expm1(w) - w) / (c.lambda * c.lambda)
		if got := intExpPoly(c.lambda, c.t, 1); !relOK1(got, want) {
			t.Errorf("I_1(%g, %g) = %.17g, want %.17g", c.lambda, c.t, got, want)
		}
	}
	// Continuity across the kummerSwitch seam: the two branches must
	// agree where they meet.
	tt := 1000.0
	for k := 0; k <= 6; k++ {
		below := intExpPoly(-(kummerSwitch-1e-9)/tt, tt, k)
		above := intExpPoly(-(kummerSwitch+1e-9)/tt, tt, k)
		if math.Abs(below-above) > 1e-10*math.Abs(below) {
			t.Errorf("k=%d: kernel jumps across regime seam: %.17g vs %.17g", k, below, above)
		}
	}
	// Monotone in t and t=0 anchor.
	if got := intExpPoly(-2, 0, 5); got != 0 {
		t.Errorf("I_5(-2, 0) = %g, want 0", got)
	}
}

// TestDecomposeRejectsBigSCC feeds a generator with a 3-cycle: the
// spectral route must refuse it with ErrStructure rather than attempt a
// decomposition its 2×2 block algebra cannot represent.
func TestDecomposeRejectsBigSCC(t *testing.T) {
	coo := sparse.NewCOO(3, 3)
	for i := 0; i < 3; i++ {
		coo.Add(i, (i+1)%3, 1.0)
		coo.Add(i, i, -1.0)
	}
	if _, err := Decompose(coo.ToCSR(), []float64{1, 0, 0}, 100); !errors.Is(err, ErrStructure) {
		t.Fatalf("got %v, want ErrStructure", err)
	}
}
