// Package parametric solves the paper's small fixed-structure CTMCs in
// closed form at analyzer-build time, turning every per-φ query into
// microseconds of scalar arithmetic instead of a solver pass.
//
// The route is spectral decomposition with exact eigenstructure. The
// φ-dependent constituent models (RMGd and the two RMNd instantiations)
// have block-triangular generators once states are ordered by a
// topological sort of the strongly connected components: contamination
// and detection are monotone, so the only cycles are the dirty-bit flips
// — SCCs of size at most two. Singleton blocks carry their eigenvalue on
// the diagonal; 2×2 blocks have real, simple eigenvalues in closed form
// (the discriminant (a−d)²+4bc is strictly positive because both
// couplings are positive rates). Eigenvectors of the resulting upper
// triangular matrix follow by back-substitution, and every measure
// becomes an exponential sum  m(t) = Σᵢ bᵢ·e^{λᵢt}.
//
// The decomposition runs in 256-bit big.Float arithmetic. This is not
// decoration: the models mix time scales across twelve orders of
// magnitude (message rates ~1e3/h against fault rates down to 1e-8/h),
// so eigenvalue gaps at the µ_old scale make float64 spectral residues
// explode into cancelling ±1e10 pairs. At 256 bits the cancellation is
// absorbed and the only rounding happens when the final evaluator
// coefficients are exported to float64. Quasi-degenerate eigenvalues are
// additionally grouped into clusters evaluated as
// e^{λ_c t}·(S₀+S₁t+…+S_K t^K), whose Taylor coefficients S_k =
// Σᵢ bᵢ·δλᵢᵏ/k! are computed exactly in big arithmetic and are O(1)
// where the raw residues bᵢ are not.
package parametric

import (
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"guardedop/internal/sparse"
)

// prec is the working precision (bits) of the build-time decomposition.
const prec = 256

// maxStates bounds the dense decomposition. The constituent models have
// ~5-25 reachable states; anything larger is not the workload this
// package is for and would make the O(n³) big-float algebra noticeable.
const maxStates = 64

// clusterGapBudget is the dimensionless gap λ·tMax below which two
// eigenvalues are folded into one cluster. 0.05 keeps the within-cluster
// Taylor argument δλ·t small enough for a short series while separating
// clusters widely enough that cross-cluster residues stay bounded.
const clusterGapBudget = 0.05

// maxTaylorOrder caps the within-cluster Taylor order K.
const maxTaylorOrder = 60

// Typed failures of the closed-form construction. Callers treat any of
// them as "fall back to the numeric engine"; they are distinct so tests
// and traces can tell a structural rejection from a numerical one.
var (
	// ErrStructure marks a generator the spectral route does not cover:
	// SCCs larger than the dirty-bit pairs, a positive eigenvalue, or a
	// state space beyond the dense-decomposition bound.
	ErrStructure = errors.New("parametric: generator structure unsupported")
	// ErrDefective marks an eigenstructure the construction cannot
	// reduce: a 2×2 block whose similarity left a material sub-diagonal
	// residual, or coincident block eigenvalues with a singular
	// eigenvector matrix.
	ErrDefective = errors.New("parametric: defective eigenstructure")
	// ErrUnstable marks an expansion whose float64 evaluation cannot be
	// trusted: coefficients too large for the query-time arithmetic or a
	// Taylor series that does not converge within the order cap.
	ErrUnstable = errors.New("parametric: expansion coefficients unstable")
	// ErrOutOfDomain marks a parameter set outside the validated domain
	// of the closed-form layer (see docs/PARAMETRIC.md).
	ErrOutOfDomain = errors.New("parametric: parameters outside the validated domain")
	// ErrValidation marks a built system that failed its probe
	// cross-validation against the numeric engine.
	ErrValidation = errors.New("parametric: probe validation against the numeric engine failed")
)

// Decomposition is the exact (generalized) eigenstructure of one
// generator together with the initial distribution folded in: for any
// reward vector r the measure m(t) = π₀·e^{Qt}·r expands as
//
//	m(t) = Σⱼ e^{λⱼt} · (Σₐ (u·Nᵃ)ⱼ·tᵃ/a!) · (wⱼ·r)
//
// where N is the nilpotent part coupling exactly-repeated eigenvalues
// (the models do have true Jordan blocks: a detection transition can
// land in a recovered state with an identical exit rate, e.g.
// −(λ+µ_old) on both sides). N commutes with the diagonal by
// construction — it only couples equal eigenvalues — so e^{Jt}
// factors exactly into e^{Dt}·(Σₐ Nᵃtᵃ/a!), a finite polynomial. The
// decomposition is built once per chain and turned into per-reward
// evaluators by Expansion.
type Decomposition struct {
	n      int
	perm   []int // permuted index -> original state index
	lambda []*big.Float
	// uPoly[a] = π₀·M·V·Nᵃ: the left weights and their images under the
	// nilpotent powers (uPoly has maxA+1 entries, uPoly[maxA+1] would be
	// all zero). For a diagonalizable generator it holds only uPoly[0].
	uPoly [][]*big.Float
	w     [][]*big.Float // right weights: rows of V⁻¹·M⁻¹
	tMax  float64

	clusters []clusterSpec
}

// clusterSpec is one quasi-degenerate eigenvalue group.
type clusterSpec struct {
	base    float64 // reference eigenvalue λ_c (the largest in the group)
	width   float64 // max |λᵢ − λ_c| over members
	members []int
}

func bf(x float64) *big.Float { return big.NewFloat(x).SetPrec(prec) }
func newBF() *big.Float       { return new(big.Float).SetPrec(prec) }

func newMat(n int) [][]*big.Float {
	m := make([][]*big.Float, n)
	for i := range m {
		m[i] = make([]*big.Float, n)
		for j := range m[i] {
			m[i][j] = newBF()
		}
	}
	return m
}

func matMul(a, b [][]*big.Float) [][]*big.Float {
	n := len(a)
	out := newMat(n)
	t := newBF()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			s := out[i][j]
			for k := 0; k < n; k++ {
				if a[i][k].Sign() == 0 || b[k][j].Sign() == 0 {
					continue
				}
				s.Add(s, t.Mul(a[i][k], b[k][j]))
			}
		}
	}
	return out
}

// Decompose builds the exact eigenstructure of the generator with
// initial distribution pi0, valid for horizons in [0, tMax]. The
// generator is read densely from the chain's CSR; row i, column j holds
// the rate i→j with the negative exit rate on the diagonal.
func Decompose(gen *sparse.CSR, pi0 []float64, tMax float64) (*Decomposition, error) {
	n := gen.Rows()
	if n == 0 || gen.Cols() != n {
		return nil, fmt.Errorf("%w: generator is %dx%d", ErrStructure, gen.Rows(), gen.Cols())
	}
	if n > maxStates {
		return nil, fmt.Errorf("%w: %d states exceeds the dense bound %d", ErrStructure, n, maxStates)
	}
	if len(pi0) != n {
		return nil, fmt.Errorf("%w: initial vector has %d entries for %d states", ErrStructure, len(pi0), n)
	}
	if !(tMax > 0) || math.IsInf(tMax, 0) {
		return nil, fmt.Errorf("%w: horizon bound %g", ErrStructure, tMax)
	}

	// Dense copy + adjacency over structural non-zeros.
	a := make([][]float64, n)
	adj := make([][]int, n)
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		gen.Row(i, func(c int, v float64) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return
			}
			a[i][c] = v
			if c != i && v != 0 {
				adj[i] = append(adj[i], c)
			}
		})
	}

	// SCC condensation → topological permutation (sources first), so the
	// permuted generator is upper block triangular.
	comps := tarjan(n, adj)
	perm := make([]int, 0, n)
	for ci := len(comps) - 1; ci >= 0; ci-- {
		c := comps[ci]
		if len(c) > 2 {
			return nil, fmt.Errorf("%w: strongly connected component of size %d", ErrStructure, len(c))
		}
		perm = append(perm, c...)
	}

	// Permuted generator in big arithmetic.
	t0 := newMat(n)
	scale := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			v := a[perm[i]][perm[j]]
			t0[i][j].SetFloat64(v)
			if av := math.Abs(v); av > scale {
				scale = av
			}
		}
	}
	if scale == 0 {
		scale = 1
	}

	// Locate the 2×2 diagonal blocks and diagonalize each exactly. M is
	// the block-diagonal accumulated similarity; λ pairs come from the
	// closed-form quadratic.
	m := newMat(n)
	minv := newMat(n)
	for i := 0; i < n; i++ {
		m[i][i].SetFloat64(1)
		minv[i][i].SetFloat64(1)
	}
	lambda := make([]*big.Float, n)
	isBlock := make([]bool, n)
	pos := 0
	for ci := len(comps) - 1; ci >= 0; ci-- {
		c := comps[ci]
		if len(c) == 1 {
			lambda[pos] = newBF().Set(t0[pos][pos])
			pos++
			continue
		}
		i := pos
		aa, bb := t0[i][i], t0[i][i+1]
		cc, dd := t0[i+1][i], t0[i+1][i+1]
		if bb.Sign() <= 0 || cc.Sign() <= 0 {
			return nil, fmt.Errorf("%w: 2-SCC without positive mutual rates", ErrStructure)
		}
		// λ± = ((a+d) ± √((a−d)² + 4bc)) / 2; the discriminant is
		// strictly positive, so the pair is real and simple.
		diff := newBF().Sub(aa, dd)
		disc := newBF().Mul(diff, diff)
		four := newBF().Mul(bb, cc)
		four.Mul(four, bf(4))
		disc.Add(disc, four)
		root := newBF().Sqrt(disc)
		sum := newBF().Add(aa, dd)
		l1 := newBF().Add(sum, root)
		l1.Quo(l1, bf(2))
		l2 := newBF().Sub(sum, root)
		l2.Quo(l2, bf(2))
		// Eigenvector columns (b, λ−a); x = λ−a solves x² + (a−d)x = bc.
		x1 := newBF().Sub(l1, aa)
		x2 := newBF().Sub(l2, aa)
		m[i][i].Set(bb)
		m[i][i+1].Set(bb)
		m[i+1][i].Set(x1)
		m[i+1][i+1].Set(x2)
		det := newBF().Sub(x2, x1)
		det.Mul(det, bb)
		if det.Sign() == 0 {
			return nil, fmt.Errorf("%w: coincident 2-SCC eigenvalues", ErrDefective)
		}
		minv[i][i].Quo(x2, det)
		minv[i][i+1].Quo(newBF().Neg(bb), det)
		minv[i+1][i].Quo(newBF().Neg(x1), det)
		minv[i+1][i+1].Quo(bb, det)
		lambda[i], lambda[i+1] = l1, l2
		isBlock[i] = true
		pos += 2
	}

	// T = M⁻¹·T0·M is upper triangular: the block similarity leaves the
	// block-triangular zero pattern intact and reduces each 2×2 diagonal
	// block to diag(λ1, λ2) up to the precision floor.
	tm := matMul(minv, matMul(t0, m))
	floor := math.Ldexp(scale, -100)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			if f, _ := new(big.Float).Abs(tm[i][j]).Float64(); f > floor {
				return nil, fmt.Errorf("%w: sub-diagonal residual %g after block reduction", ErrDefective, f)
			}
			tm[i][j].SetFloat64(0)
		}
		// Pin the diagonal to the closed-form eigenvalues.
		tm[i][i].Set(lambda[i])
	}

	// A valid generator has spectrum in the closed left half plane; tiny
	// positive round-off from the 2×2 square roots is clamped to zero,
	// anything material is a structural rejection.
	for i := 0; i < n; i++ {
		if lambda[i].Sign() > 0 {
			f, _ := lambda[i].Float64()
			if f*tMax > 1e-9 {
				return nil, fmt.Errorf("%w: positive eigenvalue %g", ErrStructure, f)
			}
			lambda[i].SetFloat64(0)
			tm[i][i].SetFloat64(0)
		}
	}

	// Generalized eigenvectors of the triangular T: solve T·V = V·J with
	// V unit upper triangular and J = diag(λ) + N, N strictly upper and
	// coupling only exactly-repeated eigenvalues. Column i by
	// back-substitution: v[j] = rhs/(λᵢ−T[j][j]) where rhs folds in the
	// couplings already placed in this column. When the gap vanishes the
	// residual rhs cannot be divided out; it becomes the Jordan coupling
	// N[j][i] instead (with v[j]=0), which is exactly the choice that
	// keeps D and N commuting.
	gapFloor := math.Ldexp(scale, -80)
	v := newMat(n)
	nilp := newMat(n)
	hasNilp := false
	tnum := newBF()
	for i := 0; i < n; i++ {
		v[i][i].SetFloat64(1)
		var coupled []int // rows j' with N[j'][i] != 0, descending
		for j := i - 1; j >= 0; j-- {
			rhs := newBF()
			for k := j + 1; k <= i; k++ {
				if tm[j][k].Sign() == 0 || v[k][i].Sign() == 0 {
					continue
				}
				rhs.Add(rhs, tnum.Mul(tm[j][k], v[k][i]))
			}
			for _, jp := range coupled {
				if nilp[jp][i].Sign() == 0 || v[j][jp].Sign() == 0 {
					continue
				}
				rhs.Sub(rhs, tnum.Mul(nilp[jp][i], v[j][jp]))
			}
			den := newBF().Sub(lambda[i], tm[j][j])
			denAbs, _ := new(big.Float).Abs(den).Float64()
			if denAbs <= gapFloor {
				if rhs.Sign() != 0 {
					nilp[j][i].Set(rhs)
					coupled = append(coupled, j)
					hasNilp = true
				}
				continue // v[j] stays zero
			}
			v[j][i].Quo(rhs, den)
		}
	}

	// V⁻¹ by the same unit-triangular back-substitution, then the left
	// and right spectral weights.
	vinv := newMat(n)
	for i := 0; i < n; i++ {
		vinv[i][i].SetFloat64(1)
		for j := i - 1; j >= 0; j-- {
			s := vinv[j][i]
			for k := j + 1; k <= i; k++ {
				if v[j][k].Sign() == 0 || vinv[k][i].Sign() == 0 {
					continue
				}
				s.Sub(s, tnum.Mul(v[j][k], vinv[k][i]))
			}
		}
	}
	w := matMul(vinv, minv)

	u := make([]*big.Float, n)
	tmp := make([]*big.Float, n)
	for j := 0; j < n; j++ {
		tmp[j] = newBF()
		for i := 0; i < n; i++ {
			if pi0[perm[i]] == 0 || m[i][j].Sign() == 0 {
				continue
			}
			tmp[j].Add(tmp[j], tnum.Mul(bf(pi0[perm[i]]), m[i][j]))
		}
	}
	for j := 0; j < n; j++ {
		u[j] = newBF()
		for i := 0; i < n; i++ {
			if tmp[i].Sign() == 0 || v[i][j].Sign() == 0 {
				continue
			}
			u[j].Add(u[j], tnum.Mul(tmp[i], v[i][j]))
		}
	}

	// Fold the nilpotent powers into the left weights: uPoly[a] = u·Nᵃ.
	// N is strictly upper triangular, so the sequence terminates; the
	// chain length in these models is the depth of a same-exit-rate
	// detection cascade, two or three at most.
	uPoly := [][]*big.Float{u}
	for hasNilp {
		prev := uPoly[len(uPoly)-1]
		next := make([]*big.Float, n)
		zero := true
		for j := 0; j < n; j++ {
			next[j] = newBF()
			for jp := 0; jp < j; jp++ {
				if nilp[jp][j].Sign() == 0 || prev[jp].Sign() == 0 {
					continue
				}
				next[j].Add(next[j], tnum.Mul(prev[jp], nilp[jp][j]))
			}
			if next[j].Sign() != 0 {
				zero = false
			}
		}
		if zero {
			break
		}
		uPoly = append(uPoly, next)
		if len(uPoly) > n {
			return nil, fmt.Errorf("%w: nilpotent chain did not terminate", ErrDefective)
		}
	}

	d := &Decomposition{n: n, perm: perm, lambda: lambda, uPoly: uPoly, w: w, tMax: tMax}
	d.buildClusters()
	return d, nil
}

// buildClusters groups quasi-degenerate eigenvalues: adjacent (sorted)
// eigenvalues merge while their gap is below clusterGapBudget/tMax. The
// cluster reference is its largest member, so within-cluster offsets
// δλ are non-positive and e^{δλ·t} stays in (0, 1].
func (d *Decomposition) buildClusters() {
	idx := make([]int, d.n)
	for i := range idx {
		idx[i] = i
	}
	lf := make([]float64, d.n)
	for i, l := range d.lambda {
		lf[i], _ = l.Float64()
	}
	sort.Slice(idx, func(a, b int) bool { return lf[idx[a]] < lf[idx[b]] })
	gap := clusterGapBudget / d.tMax
	var cur []int
	flush := func() {
		if len(cur) == 0 {
			return
		}
		base := lf[cur[len(cur)-1]] // largest member (ascending order)
		width := base - lf[cur[0]]
		d.clusters = append(d.clusters, clusterSpec{base: base, width: width, members: cur})
		cur = nil
	}
	for _, i := range idx {
		if len(cur) > 0 && lf[i]-lf[cur[len(cur)-1]] > gap {
			flush()
		}
		cur = append(cur, i)
	}
	flush()
}

// NumStates returns the decomposed chain's state count.
func (d *Decomposition) NumStates() int { return d.n }

// tarjan returns the strongly connected components of the graph in
// reverse topological order of the condensation (every edge between
// components points from a later-emitted component to an earlier one).
func tarjan(n int, adj [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		stack []int
		comps [][]int
		next  int
		visit func(int)
	)
	visit = func(vtx int) {
		index[vtx] = next
		low[vtx] = next
		next++
		stack = append(stack, vtx)
		onStack[vtx] = true
		for _, to := range adj[vtx] {
			if index[to] == unvisited {
				visit(to)
				if low[to] < low[vtx] {
					low[vtx] = low[to]
				}
			} else if onStack[to] && index[to] < low[vtx] {
				low[vtx] = index[to]
			}
		}
		if low[vtx] == index[vtx] {
			var comp []int
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == vtx {
					break
				}
			}
			comps = append(comps, comp)
		}
	}
	for i := 0; i < n; i++ {
		if index[i] == unvisited {
			visit(i)
		}
	}
	return comps
}
