package parametric

import (
	"fmt"
	"math"

	"guardedop/internal/mdcd"
)

// Domain of validity of the closed-form layer (documented in
// docs/PARAMETRIC.md). The bounds are deliberately conservative: they
// delimit the region the probe cross-validation and the equivalence
// suites have actually exercised, not the region the construction
// happens to survive. Anything outside routes to the numeric engine.
const (
	maxDomainTheta  = 1e6
	maxDomainLambda = 1e5
	maxDomainMu     = 1e-2
)

// System holds the closed-form evaluators for every φ-dependent
// constituent measure of one parameter set: the six RMGd quantities
// behind the Table 1 measures and the two RMNd no-failure probabilities
// the analyzer combines into Y(φ). It is built once per analyzer and is
// safe for concurrent use (queries only read).
type System struct {
	theta float64

	// RMGd: pointwise measures read π(φ), interval measures read L(φ).
	intH, intHF, pA1, pUndet *Evaluator
	intTauH, accDet          *Evaluator

	ndNew, ndOld *Evaluator
}

// CheckDomain reports whether the parameters are inside the validated
// domain of the closed-form layer, returning ErrOutOfDomain with the
// offending field if not.
func CheckDomain(p mdcd.Params) error {
	switch {
	case !(p.Theta <= maxDomainTheta):
		return fmt.Errorf("%w: Theta %g > %g", ErrOutOfDomain, p.Theta, maxDomainTheta)
	case !(p.Lambda <= maxDomainLambda):
		return fmt.Errorf("%w: Lambda %g > %g", ErrOutOfDomain, p.Lambda, maxDomainLambda)
	case !(p.MuNew <= maxDomainMu):
		return fmt.Errorf("%w: MuNew %g > %g", ErrOutOfDomain, p.MuNew, maxDomainMu)
	case !(p.MuOld <= maxDomainMu):
		return fmt.Errorf("%w: MuOld %g > %g", ErrOutOfDomain, p.MuOld, maxDomainMu)
	}
	return nil
}

// NewSystem builds the closed-form system for the already-generated
// constituent models. The models must have been built from p; the
// construction decomposes their generators, projects every reward
// structure, and cross-validates the result against the numeric engine
// at five probe durations before declaring the system usable. Any
// failure returns a typed error and the caller falls back to numerics.
func NewSystem(p mdcd.Params, gd *mdcd.RMGd, ndNew, ndOld *mdcd.RMNd) (*System, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := CheckDomain(p); err != nil {
		return nil, err
	}

	s := &System{theta: p.Theta}

	gdDec, err := Decompose(gd.Space.Chain.Generator(), gd.Space.Initial, p.Theta)
	if err != nil {
		return nil, fmt.Errorf("RMGd: %w", err)
	}
	vIntH, vIntTauH, vIntHF, vPA1, vUndet, vDetected := gd.RateVectors()
	expand := func(name string, dst **Evaluator, r []float64) {
		if err != nil {
			return
		}
		if *dst, err = gdDec.Expansion(r); err != nil {
			err = fmt.Errorf("RMGd %s: %w", name, err)
		}
	}
	expand("int_h", &s.intH, vIntH)
	expand("int_tau_h", &s.intTauH, vIntTauH)
	expand("int_int_h_f", &s.intHF, vIntHF)
	expand("P(A1)", &s.pA1, vPA1)
	expand("P(A4)", &s.pUndet, vUndet)
	expand("acc_detected", &s.accDet, vDetected)
	if err != nil {
		return nil, err
	}

	for _, nd := range []struct {
		name  string
		model *mdcd.RMNd
		dst   **Evaluator
	}{
		{"RMNd(mu_new)", ndNew, &s.ndNew},
		{"RMNd(mu_old)", ndOld, &s.ndOld},
	} {
		dec, derr := Decompose(nd.model.Space.Chain.Generator(), nd.model.Space.Initial, p.Theta)
		if derr != nil {
			return nil, fmt.Errorf("%s: %w", nd.name, derr)
		}
		if *nd.dst, derr = dec.Expansion(nd.model.NoFailureRates()); derr != nil {
			return nil, fmt.Errorf("%s: %w", nd.name, derr)
		}
	}

	if err := s.validateProbes(p, gd, ndNew, ndOld); err != nil {
		return nil, err
	}
	return s, nil
}

// Theta returns the validated horizon bound (the G-OP duration cap).
func (s *System) Theta() float64 { return s.theta }

// GdMeasures evaluates the Table 1 constituent measures at duration phi
// in closed form. The state-partition invariant PA1 + ∫h + ∫∫hf +
// P(undetected failure) = 1 is re-checked per query; a violation beyond
// float64 evaluation noise means the expansion cannot be trusted at
// this phi and the caller must fall back.
func (s *System) GdMeasures(phi float64) (mdcd.GdMeasures, error) {
	var m mdcd.GdMeasures
	var err error
	eval := func(dst *float64, e *Evaluator, accumulated bool) {
		if err != nil {
			return
		}
		if accumulated {
			*dst, err = e.IntAt(phi)
		} else {
			*dst, err = e.At(phi)
		}
	}
	eval(&m.IntH, s.intH, false)
	eval(&m.IntTauH, s.intTauH, true)
	eval(&m.IntHF, s.intHF, false)
	eval(&m.PA1, s.pA1, false)
	eval(&m.PUndetectedFailure, s.pUndet, false)
	eval(&m.AccDetected, s.accDet, true)
	if err != nil {
		return mdcd.GdMeasures{}, err
	}
	if sum := m.PA1 + m.IntH + m.IntHF + m.PUndetectedFailure; math.Abs(sum-1) > 1e-8 {
		return mdcd.GdMeasures{}, fmt.Errorf("%w: partition sums to %.12f at phi=%g", ErrUnstable, sum, phi)
	}
	return m.WithPhi(phi), nil
}

// NoFailureNew evaluates the RMNd(µ_new) no-failure probability at t.
func (s *System) NoFailureNew(t float64) (float64, error) { return s.ndNew.At(t) }

// NoFailureOld evaluates the RMNd(µ_old) no-failure probability at t.
func (s *System) NoFailureOld(t float64) (float64, error) { return s.ndOld.At(t) }

// probeTol is the agreement required between the closed form and the
// numeric engine at the probe durations. The bound is a construction
// sanity gate, not the equivalence contract: a wrong eigenstructure or
// mishandled Jordan chain is off by many orders of magnitude, while the
// reference itself — the auto engine, which routes large q·t solves
// through scaling-and-squaring expm — carries ~5e-10 relative noise of
// its own (~25 squarings at the paper's q·θ ≈ 2.4e7; uniformization
// agrees with the closed form to ~1e-10 but is too slow to probe at
// build time). The equivalence suites prove the public 1e-9 contract.
// The absolute floor scales with the measure's magnitude
// (interval measures grow like θ).
func probeTol(scale float64) func(a, b float64) bool {
	return func(a, b float64) bool {
		return math.Abs(a-b) <= 5e-9*math.Max(math.Abs(a), math.Abs(b))+1e-12*scale
	}
}

// validateProbes cross-checks the closed-form system against the numeric
// engine at five durations spanning the horizon: 0 (exact boundary), a
// duration deep inside the fast transient, and three across the slow
// scale. It deliberately uses per-point solves — the same
// solve-then-project route the analyzer's numeric fallback takes — and
// not the shared-propagation series engine, whose incremental error
// accumulation (~3e-10 relative over a grid) would drown the comparison.
func (s *System) validateProbes(p mdcd.Params, gd *mdcd.RMGd, ndNew, ndOld *mdcd.RMNd) error {
	probes := []float64{0, p.Theta * 1e-3, p.Theta / 3, p.Theta * 2 / 3, p.Theta}

	ch, init := gd.Space.Chain, gd.Space.Initial
	okProb := probeTol(1)
	okAcc := probeTol(1 + p.Theta)
	for _, phi := range probes {
		got, gerr := s.GdMeasures(phi)
		if gerr != nil {
			return fmt.Errorf("%w: RMGd at phi=%g: %v", ErrValidation, phi, gerr)
		}
		pi, serr := ch.Transient(init, phi)
		if serr != nil {
			return fmt.Errorf("parametric: probe solve (RMGd) at phi=%g: %w", phi, serr)
		}
		acc, serr := ch.Accumulated(init, phi)
		if serr != nil {
			return fmt.Errorf("parametric: probe solve (RMGd) at phi=%g: %w", phi, serr)
		}
		w, serr := gd.MeasuresFromSolution(phi, pi, acc)
		if serr != nil {
			return fmt.Errorf("parametric: probe projection (RMGd) at phi=%g: %w", phi, serr)
		}
		fields := []struct {
			name     string
			got, ref float64
			ok       func(a, b float64) bool
		}{
			{"int_h", got.IntH, w.IntH, okProb},
			{"int_tau_h", got.IntTauH, w.IntTauH, okAcc},
			{"int_int_h_f", got.IntHF, w.IntHF, okProb},
			{"P(A1)", got.PA1, w.PA1, okProb},
			{"P(A4)", got.PUndetectedFailure, w.PUndetectedFailure, okProb},
			{"acc_detected", got.AccDetected, w.AccDetected, okAcc},
		}
		for _, f := range fields {
			if !f.ok(f.got, f.ref) {
				return fmt.Errorf("%w: RMGd %s at phi=%g: closed form %.15g vs numeric %.15g",
					ErrValidation, f.name, phi, f.got, f.ref)
			}
		}
	}

	for _, nd := range []struct {
		name  string
		model *mdcd.RMNd
		eval  *Evaluator
	}{
		{"RMNd(mu_new)", ndNew, s.ndNew},
		{"RMNd(mu_old)", ndOld, s.ndOld},
	} {
		for _, t := range probes {
			ref, serr := nd.model.NoFailureProbability(t)
			if serr != nil {
				return fmt.Errorf("parametric: probe solve (%s) at t=%g: %w", nd.name, t, serr)
			}
			got, gerr := nd.eval.At(t)
			if gerr != nil {
				return fmt.Errorf("%w: %s at t=%g: %v", ErrValidation, nd.name, t, gerr)
			}
			if !okProb(got, ref) {
				return fmt.Errorf("%w: %s at t=%g: closed form %.15g vs numeric %.15g",
					ErrValidation, nd.name, t, got, ref)
			}
		}
	}
	return nil
}
