package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ablation-gamma", "ablation-phases", "ablation-recovery", "costs",
		"ext-stagger", "ext-uncertainty", "ext-validation",
		"fig10", "fig11", "fig11x", "fig12", "fig9",
		"sensitivity", "table1", "table2", "table3", "valsim",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q", i, e.ID, want[i])
		}
		if e.Title == "" || e.Paper == "" || e.Run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("fig9"); !ok {
		t.Error("fig9 not found")
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("nonsense found")
	}
}

func TestFigure9ReproducesPaperOptima(t *testing.T) {
	curves, err := Figure9Curves()
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Fatalf("got %d curves", len(curves))
	}
	phi0, y0 := curves[0].Optimal()
	phi1, _ := curves[1].Optimal()
	if phi0 != 7000 {
		t.Errorf("base optimal phi = %v, want 7000", phi0)
	}
	if phi1 != 5000 {
		t.Errorf("halved-mu optimal phi = %v, want 5000", phi1)
	}
	if y0 < 1.3 || y0 > 1.7 {
		t.Errorf("base max Y = %.3f, want near the paper's 1.45", y0)
	}
}

func TestFigure10ReproducesPaperOptima(t *testing.T) {
	curves, err := Figure10Curves()
	if err != nil {
		t.Fatal(err)
	}
	phiFast, _ := curves[0].Optimal()
	phiSlow, _ := curves[1].Optimal()
	if phiFast != 7000 || phiSlow != 6000 {
		t.Errorf("optima = (%v, %v), want (7000, 6000)", phiFast, phiSlow)
	}
}

func TestFigure11CoverageOrdering(t *testing.T) {
	curves, err := Figure11Curves()
	if err != nil {
		t.Fatal(err)
	}
	var prevMax = 100.0
	for _, c := range curves {
		phi, y := c.Optimal()
		if phi != 6000 {
			t.Errorf("%s: optimal phi = %v, want 6000", c.Label, phi)
		}
		if y >= prevMax {
			t.Errorf("%s: max Y %v not decreasing in coverage", c.Label, y)
		}
		prevMax = y
	}
}

func TestFigure11xLowCoverage(t *testing.T) {
	curves, err := Figure11xCurves()
	if err != nil {
		t.Fatal(err)
	}
	// c=0.20: a weak interior optimum near 4000.
	phi20, y20 := curves[0].Optimal()
	if phi20 < 3000 || phi20 > 5000 {
		t.Errorf("c=0.20 optimal phi = %v, want near 4000", phi20)
	}
	if y20 < 1.0 || y20 > 1.1 {
		t.Errorf("c=0.20 max Y = %.3f, want marginal (paper: 1.06)", y20)
	}
	// c=0.10: never worth it.
	_, y10 := curves[1].Optimal()
	if y10 > 1.0+1e-9 {
		t.Errorf("c=0.10 max Y = %.4f, want <= 1", y10)
	}
	for i, y := range curves[1].Y {
		if curves[1].Phis[i] > 0 && y >= 1 {
			t.Errorf("c=0.10: Y(%v) = %.4f, want < 1", curves[1].Phis[i], y)
		}
	}
}

func TestFigure12ReproducesPaperOptima(t *testing.T) {
	curves, err := Figure12Curves()
	if err != nil {
		t.Fatal(err)
	}
	phi0, _ := curves[0].Optimal()
	phi1, _ := curves[1].Optimal()
	if phi0 != 2500 {
		t.Errorf("theta=5000 base optimal phi = %v, want 2500", phi0)
	}
	// The paper reports 2000; the reconstructed model is essentially flat
	// between 2000 and 2500 there, so accept either grid point.
	if phi1 != 2000 && phi1 != 2500 {
		t.Errorf("theta=5000 halved-mu optimal phi = %v, want 2000-2500", phi1)
	}
}

func TestTable2MatchesPaperDerivedParams(t *testing.T) {
	fast, slow, err := Table2Measures()
	if err != nil {
		t.Fatal(err)
	}
	if fast.Rho1 < 0.975 || fast.Rho1 > 0.985 || fast.Rho2 < 0.94 || fast.Rho2 > 0.96 {
		t.Errorf("fast overheads = %+v, want ≈ (0.98, 0.95)", fast)
	}
	if slow.Rho1 < 0.945 || slow.Rho1 > 0.96 || slow.Rho2 < 0.89 || slow.Rho2 > 0.91 {
		t.Errorf("slow overheads = %+v, want ≈ (0.95, 0.90)", slow)
	}
}

func TestAllReportsRun(t *testing.T) {
	for _, e := range All() {
		if e.ID == "valsim" && testing.Short() {
			continue // Monte-Carlo; covered by TestValsimReport when not -short
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(&buf); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			report := buf.String()
			complete := false
			for _, marker := range []string{"paper", "rho", "Table", "phi", "posterior"} {
				if strings.Contains(report, marker) {
					complete = true
					break
				}
			}
			if e.ID != "valsim" && !complete {
				t.Errorf("%s report looks incomplete:\n%s", e.ID, report)
			}
		})
	}
}

func TestValsimPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo cross-validation skipped in -short mode")
	}
	cfg := DefaultValsimConfig()
	cfg.Paths = 8000 // lighter than the CLI default, still tight enough
	rows, err := RunValsim(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		dev := r.SimY - r.AnalyticY
		if dev < 0 {
			dev = -dev
		}
		if dev > 4*r.SimYStdErr+0.025*r.AnalyticY {
			t.Errorf("phi=%v: sim Y = %.4f ± %.4f vs analytic %.4f", r.Phi, r.SimY, r.SimYStdErr, r.AnalyticY)
		}
	}
}

func TestCurveOptimalEmpty(t *testing.T) {
	var c Curve
	if phi, y := c.Optimal(); phi != 0 || y != 0 {
		t.Errorf("empty curve optimal = (%v, %v)", phi, y)
	}
}
