package experiments

import (
	"context"
	"fmt"
	"io"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/sim"
	"guardedop/internal/textplot"
)

// ValsimConfig parameterises the simulation cross-validation.
type ValsimConfig struct {
	Params mdcd.Params
	Phis   []float64
	Paths  int
	Seed   int64
}

// DefaultValsimConfig compares analytic and simulated Y on a
// dimensionally-equivalent scaled-down parameter set (same µ·θ, φ/θ and
// λ≫µ regime as Table 3, far fewer simulated events), which keeps the
// experiment interactive. Pass the Table 3 parameters explicitly for a
// full-scale (slow) run.
func DefaultValsimConfig() ValsimConfig {
	p := mdcd.DefaultParams()
	p.Theta = 1000
	p.MuNew = 1e-3
	p.MuOld = 1e-7
	p.Lambda = 120
	p.Alpha, p.Beta = 600, 600
	return ValsimConfig{
		Params: p,
		Phis:   []float64{0, 200, 400, 600, 800, 1000},
		Paths:  20000,
		Seed:   2002,
	}
}

// ValsimRow is one φ point of the cross-validation.
type ValsimRow struct {
	Phi        float64
	AnalyticY  float64
	SimY       float64
	SimYStdErr float64
	PerPathY   float64
}

// RunValsim executes the cross-validation and returns per-φ rows.
func RunValsim(cfg ValsimConfig) ([]ValsimRow, error) {
	return RunValsimContext(context.Background(), cfg)
}

// RunValsimContext is RunValsim under a caller-carried context: the
// analytic evaluations and a per-φ valsim.point span report to the
// context's tracer, so `gsusim -trace`/`-metrics` can attribute the
// cross-validation's solver budget (the simulation itself is pure
// Monte-Carlo and contributes wall time, not solver passes).
func RunValsimContext(ctx context.Context, cfg ValsimConfig) ([]ValsimRow, error) {
	analyzer, err := core.NewAnalyzer(cfg.Params)
	if err != nil {
		return nil, err
	}
	rho1, rho2 := analyzer.Rho()
	s, err := sim.NewSimulator(cfg.Params, rho1, rho2)
	if err != nil {
		return nil, err
	}
	rows := make([]ValsimRow, 0, len(cfg.Phis))
	for _, phi := range cfg.Phis {
		pctx, sp := obs.StartSpan(ctx, "valsim.point")
		sp.SetFloat("phi", phi)
		ana, err := analyzer.EvaluateContext(pctx, phi)
		if err != nil {
			sp.End()
			return nil, err
		}
		fixed, err := s.EstimateY(phi, sim.Options{
			Paths: cfg.Paths, Seed: cfg.Seed, GammaMode: sim.GammaFixed, Gamma: ana.Gamma,
		})
		if err != nil {
			sp.End()
			return nil, err
		}
		perPath, err := s.EstimateY(phi, sim.Options{Paths: cfg.Paths, Seed: cfg.Seed + 1})
		sp.End()
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValsimRow{
			Phi:        phi,
			AnalyticY:  ana.Y,
			SimY:       fixed.Y,
			SimYStdErr: fixed.YStdErr,
			PerPathY:   perPath.Y,
		})
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "valsim",
		Title: "Cross-validation: model translation vs Monte-Carlo simulation of the monolithic process",
		Paper: "methodological check (the paper proposes testbed-simulation validation as future work)",
		Run: func(w io.Writer) error {
			cfg := DefaultValsimConfig()
			return runValsimReport(w, cfg)
		},
	})
}

func runValsimReport(w io.Writer, cfg ValsimConfig) error {
	fmt.Fprintln(w, "Translation-vs-simulation cross-validation")
	fmt.Fprintf(w, "(scaled parameters: theta=%g, mu_new=%g, lambda=%g; %d paths per point)\n\n",
		cfg.Params.Theta, cfg.Params.MuNew, cfg.Params.Lambda, cfg.Paths)
	rows, err := RunValsim(cfg)
	if err != nil {
		return err
	}
	table := [][]string{{"phi", "Y analytic", "Y sim (fixed gamma)", "stderr", "Y sim (per-path gamma)"}}
	for _, r := range rows {
		table = append(table, []string{
			fmt.Sprintf("%.0f", r.Phi),
			fmt.Sprintf("%.4f", r.AnalyticY),
			fmt.Sprintf("%.4f", r.SimY),
			fmt.Sprintf("%.4f", r.SimYStdErr),
			fmt.Sprintf("%.4f", r.PerPathY),
		})
	}
	fmt.Fprint(w, textplot.Table(table))
	fmt.Fprintln(w)
	fmt.Fprintln(w, "The fixed-gamma simulation targets the same quantity as the analytic")
	fmt.Fprintln(w, "translation; agreement within a few standard errors validates the")
	fmt.Fprintln(w, "successive-translation pipeline end to end. The per-path-gamma column")
	fmt.Fprintln(w, "shows the (systematically higher) index under the design-level")
	fmt.Fprintln(w, "discount gamma(tau) = 1 - tau/theta; see EXPERIMENTS.md.")
	return writeValsimVerdict(w, rows)
}

func writeValsimVerdict(w io.Writer, rows []ValsimRow) error {
	worst := 0.0
	for _, r := range rows {
		dev := r.SimY - r.AnalyticY
		if dev < 0 {
			dev = -dev
		}
		denom := 4*r.SimYStdErr + 0.02*r.AnalyticY
		if denom > 0 && dev/denom > worst {
			worst = dev / denom
		}
	}
	if worst <= 1 {
		_, err := fmt.Fprintln(w, "\nverdict: PASS (all points within 4 sigma + 2%)")
		return err
	}
	_, err := fmt.Fprintf(w, "\nverdict: DEVIATION (worst point at %.2fx the tolerance)\n", worst)
	return err
}
