package experiments

import (
	"fmt"
	"io"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/sensitivity"
	"guardedop/internal/textplot"
)

// GammaAblation evaluates Y(φ) at the base parameters under the three γ
// policies.
func GammaAblation() (map[core.GammaPolicy]Curve, error) {
	a, err := core.NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		return nil, err
	}
	phis := core.SweepGrid(mdcd.DefaultParams().Theta, 10)
	out := make(map[core.GammaPolicy]Curve, 3)
	for _, pol := range []core.GammaPolicy{core.GammaPaperTauBar, core.GammaConditionalMean, core.GammaNone} {
		c := Curve{Label: pol.String(), Params: mdcd.DefaultParams(), Phis: phis}
		for _, phi := range phis {
			r, err := a.EvaluateWithPolicy(phi, pol)
			if err != nil {
				return nil, err
			}
			c.Y = append(c.Y, r.Y)
			c.Results = append(c.Results, r)
		}
		out[pol] = c
	}
	return out, nil
}

// PhaseAblation solves the RMGp overhead measures under Erlang-k safeguard
// durations for each stage count.
func PhaseAblation(stages []int) (map[int]mdcd.GpMeasures, error) {
	out := make(map[int]mdcd.GpMeasures, len(stages))
	for _, k := range stages {
		gp, err := mdcd.BuildRMGpErlang(mdcd.DefaultParams(), k)
		if err != nil {
			return nil, err
		}
		m, err := gp.Measures()
		if err != nil {
			return nil, err
		}
		out[k] = m
	}
	return out, nil
}

func init() {
	register(Experiment{
		ID:    "costs",
		Title: "Safeguard cost accounting: expected AT/checkpoint counts during guarded operation",
		Paper: "implicit in Table 2 (time fractions); made explicit here via impulse rewards",
		Run: func(w io.Writer) error {
			p := mdcd.DefaultParams()
			gp, err := mdcd.BuildRMGp(p)
			if err != nil {
				return err
			}
			rates, err := gp.SafeguardRates()
			if err != nil {
				return err
			}
			m, err := gp.Measures()
			if err != nil {
				return err
			}
			a, err := core.NewAnalyzer(p)
			if err != nil {
				return err
			}
			best, err := a.OptimizePhi(core.OptimizeOptions{Tolerance: 50})
			if err != nil {
				return err
			}
			phi := best.Phi

			fmt.Fprintln(w, "Safeguard operation frequencies under the G-OP mode (steady state,")
			fmt.Fprintln(w, "impulse rewards on activity completions; base parameters):")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table([][]string{
				{"operation", "rate (1/h)", fmt.Sprintf("expected count over phi*=%.0f h", phi)},
				{"AT on P1new externals", fmt.Sprintf("%.2f", rates.P1nAT), fmt.Sprintf("%.0f", rates.P1nAT*phi)},
				{"AT on P2 externals", fmt.Sprintf("%.2f", rates.P2AT), fmt.Sprintf("%.0f", rates.P2AT*phi)},
				{"P2 checkpoints", fmt.Sprintf("%.2f", rates.P2Ckpt), fmt.Sprintf("%.0f", rates.P2Ckpt*phi)},
				{"P1old checkpoints", fmt.Sprintf("%.2f", rates.P1oCkpt), fmt.Sprintf("%.0f", rates.P1oCkpt*phi)},
				{"total", fmt.Sprintf("%.2f", rates.Total()), fmt.Sprintf("%.0f", rates.Total()*phi)},
			}))
			fmt.Fprintln(w)
			fmt.Fprintf(w, "cross-check: P1new AT occupancy rate x mean duration = %.6f = 1 - rho1 = %.6f\n",
				rates.P1nAT/p.Alpha, 1-m.Rho1)
			fmt.Fprintf(w, "time lost to safeguards over phi*: P1new %.0f h, P2 %.0f h (of %.0f h)\n",
				(1-m.Rho1)*phi, (1-m.Rho2)*phi, phi)
			return nil
		},
	})

	register(Experiment{
		ID:    "ablation-gamma",
		Title: "Ablation: gamma treatment (paper tau-bar vs conditional mean vs no discount)",
		Paper: "the paper fixes gamma = 1 - tau/theta with tau the Table 1 int tau*h reward; alternatives quantify that choice",
		Run: func(w io.Writer) error {
			curves, err := GammaAblation()
			if err != nil {
				return err
			}
			ordered := []core.GammaPolicy{core.GammaPaperTauBar, core.GammaConditionalMean, core.GammaNone}
			var cs []Curve
			for _, pol := range ordered {
				cs = append(cs, curves[pol])
			}
			return reportCurves(w, "Gamma-policy ablation (base parameters)",
				"paper policy gives the published shapes; milder discounts raise Y and push phi* right", cs)
		},
	})

	register(Experiment{
		ID:    "ablation-phases",
		Title: "Ablation: Erlang-k safeguard durations in RMGp",
		Paper: "the paper assumes exponential AT/checkpoint durations; overhead fractions should depend on the means only",
		Run: func(w io.Writer) error {
			stages := []int{1, 2, 4, 8}
			ms, err := PhaseAblation(stages)
			if err != nil {
				return err
			}
			rows := [][]string{{"Erlang stages k", "rho1", "rho2", "squared CV of durations"}}
			for _, k := range stages {
				rows = append(rows, []string{
					fmt.Sprintf("%d", k),
					fmt.Sprintf("%.5f", ms[k].Rho1),
					fmt.Sprintf("%.5f", ms[k].Rho2),
					fmt.Sprintf("%.3f", 1/float64(k)),
				})
			}
			fmt.Fprintln(w, "Erlang-staged safeguard durations (same means, lower variance):")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table(rows))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "finding: rho1/rho2 move by < 5e-4 across k — the overhead measures are")
			fmt.Fprintln(w, "insensitive to the duration distribution's shape, validating the paper's")
			fmt.Fprintln(w, "exponential-duration simplification.")
			return nil
		},
	})

	register(Experiment{
		ID:    "sensitivity",
		Title: "Local sensitivity of the optimal decision to every parameter",
		Paper: "systematises the one-at-a-time studies of Figures 9-12 into elasticities",
		Run: func(w io.Writer) error {
			results, err := sensitivity.Analyze(mdcd.DefaultParams(), sensitivity.Options{})
			if err != nil {
				return err
			}
			rows := [][]string{{"parameter", "dlnY*/dlnp", "phi* at -10%", "phi* base", "phi* at +10%"}}
			for _, r := range results {
				rows = append(rows, []string{
					string(r.Parameter),
					fmt.Sprintf("%+.4f", r.YElasticity),
					fmt.Sprintf("%.0f", r.DownPhi),
					fmt.Sprintf("%.0f", r.BasePhi),
					fmt.Sprintf("%.0f", r.UpPhi),
				})
			}
			fmt.Fprintln(w, "Tornado: parameters ranked by influence on the achievable index Y*")
			fmt.Fprintln(w, "(central differences at ±10%, base = Table 3):")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table(rows))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "reading: coverage and the upgraded component's fault rate dominate the")
			fmt.Fprintln(w, "achievable benefit (Figs. 9, 11); safeguard speeds matter an order less")
			fmt.Fprintln(w, "(Fig. 10); mu_old and p_ext are second-order at the base point.")
			return nil
		},
	})
}
