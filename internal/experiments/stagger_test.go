package experiments

import (
	"math"
	"testing"

	"guardedop/internal/mdcd"
)

func TestStaggerStudyCompounds(t *testing.T) {
	p := mdcd.DefaultParams()
	rows, err := StaggerStudy(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	base := math.Exp(-p.MuNew * p.Theta)
	for _, r := range rows {
		// Simultaneous: multiplicative compounding.
		want := math.Pow(base, float64(r.K))
		if math.Abs(r.SurvivalTogether-want) > 0.01 {
			t.Errorf("k=%d simultaneous survival %.4f, want ≈ %.4f", r.K, r.SurvivalTogether, want)
		}
		// Staggered: flat at the single-upgrade level.
		if math.Abs(r.SurvivalStaggered-base) > 0.01 {
			t.Errorf("k=%d staggered survival %.4f, want ≈ %.4f", r.K, r.SurvivalStaggered, base)
		}
	}
	// At k=1 the two strategies coincide exactly.
	if math.Abs(rows[0].SurvivalTogether-rows[0].SurvivalStaggered) > 1e-9 {
		t.Errorf("k=1 strategies differ: %v vs %v", rows[0].SurvivalTogether, rows[0].SurvivalStaggered)
	}
}

func TestStaggerStudyValidation(t *testing.T) {
	if _, err := StaggerStudy(mdcd.DefaultParams(), 1); err == nil {
		t.Error("n=1 accepted")
	}
}
