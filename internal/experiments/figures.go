package experiments

import (
	"fmt"
	"io"
	"strconv"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

// Curve is one evaluated Y(φ) series.
type Curve struct {
	Label   string
	Params  mdcd.Params
	Phis    []float64
	Y       []float64
	Results []core.Result
}

// Optimal returns the φ maximising Y along the curve and the maximum value.
func (c Curve) Optimal() (phi, y float64) {
	if len(c.Y) == 0 {
		return 0, 0
	}
	best := 0
	for i := range c.Y {
		if c.Y[i] > c.Y[best] {
			best = i
		}
	}
	return c.Phis[best], c.Y[best]
}

// sweep evaluates Y over the paper's grid (11 points covering [0, θ]).
func sweep(label string, p mdcd.Params) (Curve, error) {
	a, err := core.NewAnalyzer(p)
	if err != nil {
		return Curve{}, fmt.Errorf("experiments: %s: %w", label, err)
	}
	phis := core.SweepGrid(p.Theta, 10)
	results, err := a.Curve(phis)
	if err != nil {
		return Curve{}, fmt.Errorf("experiments: %s: %w", label, err)
	}
	c := Curve{Label: label, Params: p, Phis: phis, Results: results}
	for _, r := range results {
		c.Y = append(c.Y, r.Y)
	}
	return c, nil
}

// Figure9Curves evaluates the two curves of Figure 9: µ_new ∈ {1e-4, 0.5e-4}
// at θ=10000.
func Figure9Curves() ([]Curve, error) {
	base := mdcd.DefaultParams()
	half := base
	half.MuNew = 0.5e-4
	return sweepAll([]labelled{
		{"mu_new = 1e-4", base},
		{"mu_new = 0.5e-4", half},
	})
}

// Figure10Curves evaluates the two curves of Figure 10: α=β=6000 (the
// Figure 9 base curve, ρ≈(0.98,0.95)) against α=β=2500 (ρ≈(0.95,0.90)).
func Figure10Curves() ([]Curve, error) {
	base := mdcd.DefaultParams()
	slow := base
	slow.Alpha, slow.Beta = 2500, 2500
	return sweepAll([]labelled{
		{"alpha=beta=6000 (rho1=0.98, rho2=0.95)", base},
		{"alpha=beta=2500 (rho1=0.95, rho2=0.90)", slow},
	})
}

// Figure11Curves evaluates the coverage study of Figure 11 at α=β=2500:
// c ∈ {0.95, 0.75, 0.50}.
func Figure11Curves() ([]Curve, error) {
	var ls []labelled
	for _, c := range []float64{0.95, 0.75, 0.50} {
		p := mdcd.DefaultParams()
		p.Alpha, p.Beta = 2500, 2500
		p.Coverage = c
		ls = append(ls, labelled{"c = " + strconv.FormatFloat(c, 'g', -1, 64), p})
	}
	return sweepAll(ls)
}

// Figure11xCurves evaluates the Section 6 text experiments at very low
// coverage: c ∈ {0.20, 0.10} (α=β=2500).
func Figure11xCurves() ([]Curve, error) {
	var ls []labelled
	for _, c := range []float64{0.20, 0.10} {
		p := mdcd.DefaultParams()
		p.Alpha, p.Beta = 2500, 2500
		p.Coverage = c
		ls = append(ls, labelled{"c = " + strconv.FormatFloat(c, 'g', -1, 64), p})
	}
	return sweepAll(ls)
}

// Figure12Curves evaluates Figure 12: θ reduced to 5000, µ_new ∈
// {1e-4, 0.5e-4}.
func Figure12Curves() ([]Curve, error) {
	base := mdcd.DefaultParams()
	base.Theta = 5000
	half := base
	half.MuNew = 0.5e-4
	return sweepAll([]labelled{
		{"mu_new = 1e-4", base},
		{"mu_new = 0.5e-4", half},
	})
}

type labelled struct {
	label  string
	params mdcd.Params
}

func sweepAll(ls []labelled) ([]Curve, error) {
	out := make([]Curve, 0, len(ls))
	for _, l := range ls {
		c, err := sweep(l.label, l.params)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	return out, nil
}

// reportCurves renders a figure reproduction: data table, ASCII chart,
// optima, and the paper's expectation.
func reportCurves(w io.Writer, title, paper string, curves []Curve) error {
	if _, err := fmt.Fprintf(w, "%s\n\n", title); err != nil {
		return err
	}
	rows := [][]string{{"phi"}}
	for _, c := range curves {
		rows[0] = append(rows[0], "Y ["+c.Label+"]")
	}
	for i, phi := range curves[0].Phis {
		row := []string{strconv.FormatFloat(phi, 'f', 0, 64)}
		for _, c := range curves {
			row = append(row, strconv.FormatFloat(c.Y[i], 'f', 4, 64))
		}
		rows = append(rows, row)
	}
	fmt.Fprint(w, textplot.Table(rows))
	fmt.Fprintln(w)

	var series []textplot.Series
	for _, c := range curves {
		series = append(series, textplot.Series{Name: c.Label, Y: c.Y})
	}
	fmt.Fprint(w, textplot.Chart("Y vs phi", curves[0].Phis, series, 66, 14))
	fmt.Fprintln(w)

	for _, c := range curves {
		phi, y := c.Optimal()
		fmt.Fprintf(w, "optimal phi [%s] = %.0f (max Y = %.4f)\n", c.Label, phi, y)
	}
	fmt.Fprintf(w, "\npaper: %s\n", paper)
	return nil
}

func init() {
	register(Experiment{
		ID:    "fig9",
		Title: "Figure 9: effect of fault-manifestation rate on optimal G-OP duration (theta=10000)",
		Paper: "optimal phi = 7000 at mu_new=1e-4 and 5000 at mu_new=0.5e-4; max Y ≈ 1.45",
		Run: func(w io.Writer) error {
			curves, err := Figure9Curves()
			if err != nil {
				return err
			}
			return reportCurves(w, "Figure 9 (theta=10000, lambda=1200, c=0.95, alpha=beta=6000)",
				"optimal phi 7000 (mu_new=1e-4) and 5000 (mu_new=0.5e-4), max Y ≈ 1.45", curves)
		},
	})
	register(Experiment{
		ID:    "fig10",
		Title: "Figure 10: effect of performance overhead on optimal G-OP duration (theta=10000)",
		Paper: "optimal phi drops from 7000 to 6000 when alpha=beta drop from 6000 to 2500",
		Run: func(w io.Writer) error {
			curves, err := Figure10Curves()
			if err != nil {
				return err
			}
			return reportCurves(w, "Figure 10 (theta=10000, mu_new=1e-4, c=0.95)",
				"optimal phi 7000 at alpha=beta=6000 vs 6000 at alpha=beta=2500", curves)
		},
	})
	register(Experiment{
		ID:    "fig11",
		Title: "Figure 11: effect of AT coverage on optimal G-OP duration (theta=10000)",
		Paper: "optimal phi stays at 6000 for c in {0.95, 0.75, 0.50}; max Y drops from ≈1.45 to ≈1.15",
		Run: func(w io.Writer) error {
			curves, err := Figure11Curves()
			if err != nil {
				return err
			}
			return reportCurves(w, "Figure 11 (theta=10000, mu_new=1e-4, alpha=beta=2500)",
				"optimal phi insensitive to c (stays 6000); max Y 1.45 -> 1.15 as c drops to 0.50", curves)
		},
	})
	register(Experiment{
		ID:    "fig11x",
		Title: "Section 6 text: very low AT coverage (c = 0.20 and 0.10)",
		Paper: "c=0.20: max Y ≈ 1.06 at phi=4000 (too small to justify G-OP); c=0.10: Y < 1 and decreasing",
		Run: func(w io.Writer) error {
			curves, err := Figure11xCurves()
			if err != nil {
				return err
			}
			return reportCurves(w, "Low-coverage text experiments (theta=10000, alpha=beta=2500)",
				"c=0.20: max Y ≈ 1.06 at phi = 4000; c=0.10: Y < 1 for all phi > 0, decreasing", curves)
		},
	})
	register(Experiment{
		ID:    "fig12",
		Title: "Figure 12: effect of fault-manifestation rate on optimal G-OP duration (theta=5000)",
		Paper: "optimal phi = 2500 (mu_new=1e-4) and 2000 (mu_new=0.5e-4); steeper post-peak decline than theta=10000",
		Run: func(w io.Writer) error {
			curves, err := Figure12Curves()
			if err != nil {
				return err
			}
			return reportCurves(w, "Figure 12 (theta=5000, lambda=1200, c=0.95, alpha=beta=6000)",
				"optimal phi 2500 (mu_new=1e-4) and 2000 (mu_new=0.5e-4); Y falls faster after its peak than at theta=10000", curves)
		},
	})
}
