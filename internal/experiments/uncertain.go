package experiments

import (
	"fmt"
	"io"
	"math"

	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
	"guardedop/internal/uncertainty"
)

// UncertaintyStudy runs the posterior-propagation extension for a given
// onboard-validation outcome: prior knowledge plus (faults, hours) of
// validation exposure.
func UncertaintyStudy(prior uncertainty.Gamma, faults int, hours float64, opts uncertainty.PropagateOptions) (*uncertainty.Propagation, uncertainty.Gamma, error) {
	posterior, err := uncertainty.PosteriorRate(prior, faults, hours)
	if err != nil {
		return nil, uncertainty.Gamma{}, err
	}
	prop, err := uncertainty.Propagate(mdcd.DefaultParams(), posterior, opts)
	return prop, posterior, err
}

func init() {
	register(Experiment{
		ID:    "ext-uncertainty",
		Title: "Extension: Bayesian uncertainty in mu_new from onboard validation",
		Paper: "Section 2 motivates estimating mu_new by onboard validation with Bayesian reliability analysis; this propagates that posterior through the decision",
		Run: func(w io.Writer) error {
			// A weakly informative prior (mean 2e-4) updated by a
			// fault-free 10000-hour onboard-validation campaign pulls the
			// posterior mean to 1e-4 — the Table 3 value — with honest
			// spread.
			prior := uncertainty.Gamma{Shape: 2, Rate: 1e4}
			const faults, hours = 0, 10000.0
			prop, posterior, err := UncertaintyStudy(prior, faults, hours,
				uncertainty.PropagateOptions{Samples: 200, Seed: 2002, GridPoints: 10})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "prior: Gamma(%.0f, %.0f) (mean %.1e); validation: %d faults in %.0f h\n",
				prior.Shape, prior.Rate, prior.Mean(), faults, hours)
			fmt.Fprintf(w, "posterior: Gamma(%.0f, %.0f) (mean %.1e, sd %.1e)\n\n",
				posterior.Shape, posterior.Rate, posterior.Mean(),
				math.Sqrt(posterior.Variance()))

			q := func(s []float64, p float64) float64 { return uncertainty.Quantile(s, p) }
			fmt.Fprint(w, textplot.Table([][]string{
				{"quantity", "5%", "50%", "95%"},
				{"mu_new", fmt.Sprintf("%.2e", q(prop.MuSamples, 0.05)),
					fmt.Sprintf("%.2e", q(prop.MuSamples, 0.50)),
					fmt.Sprintf("%.2e", q(prop.MuSamples, 0.95))},
				{"optimal phi", fmt.Sprintf("%.0f", q(prop.PhiStars, 0.05)),
					fmt.Sprintf("%.0f", q(prop.PhiStars, 0.50)),
					fmt.Sprintf("%.0f", q(prop.PhiStars, 0.95))},
				{"max Y", fmt.Sprintf("%.3f", q(prop.MaxYs, 0.05)),
					fmt.Sprintf("%.3f", q(prop.MaxYs, 0.50)),
					fmt.Sprintf("%.3f", q(prop.MaxYs, 0.95))},
			}))
			fmt.Fprintln(w)
			fmt.Fprintf(w, "plug-in decision (optimise at posterior mean): phi = %.0f\n", prop.PlugInPhi)
			fmt.Fprintf(w, "robust decision (maximise posterior E[Y(phi)]): phi = %.0f with E[Y] = %.4f\n",
				prop.RobustPhi, prop.RobustEY)
			fmt.Fprintln(w)
			fmt.Fprintln(w, "reading: with an honest posterior the optimal duration spans thousands")
			fmt.Fprintln(w, "of hours across draws (Fig. 9's sensitivity, now as a distribution);")
			fmt.Fprintln(w, "the robust choice hedges toward longer guarding than the plug-in when")
			fmt.Fprintln(w, "the posterior leaves mass on higher fault rates.")
			return nil
		},
	})
}
