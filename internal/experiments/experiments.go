// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6): the reward-structure tables (Tables 1-2), the
// parameter assignment (Table 3), the four φ-sweep figures (Figures 9-12),
// the low-coverage text experiments, and the simulation cross-validation
// of the model translation.
//
// Each experiment is addressable by id (used by cmd/gsueval and by the
// benchmark suite) and produces a plain-text report comparing the
// reproduction against the paper's published expectation.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one reproducible artefact of the paper.
type Experiment struct {
	// ID is the stable handle, e.g. "fig9" or "table2".
	ID string
	// Title names the paper artefact.
	Title string
	// Paper summarises what the paper reports for this artefact.
	Paper string
	// Run executes the experiment and writes a human-readable report.
	Run func(w io.Writer) error
}

// registry holds all experiments keyed by ID.
var registry = map[string]Experiment{}

// register adds an experiment to the registry at package init time; it
// panics on a duplicate ID so a copy-paste error fails the first test run.
func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic(fmt.Sprintf("experiments: duplicate id %q", e.ID))
	}
	registry[e.ID] = e
}

// All returns every experiment sorted by ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
