package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCurvesCSV emits the evaluated curves as CSV: one row per φ with one
// Y column per curve, for plotting the figures with external tools.
func WriteCurvesCSV(w io.Writer, curves []Curve) error {
	if len(curves) == 0 {
		return fmt.Errorf("experiments: no curves to write")
	}
	cw := csv.NewWriter(w)
	header := []string{"phi"}
	for _, c := range curves {
		header = append(header, "Y["+c.Label+"]")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for i, phi := range curves[0].Phis {
		row := []string{strconv.FormatFloat(phi, 'g', -1, 64)}
		for _, c := range curves {
			if i >= len(c.Y) || len(c.Phis) != len(curves[0].Phis) {
				return fmt.Errorf("experiments: curves have mismatched grids")
			}
			row = append(row, strconv.FormatFloat(c.Y[i], 'g', 10, 64))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteResultsCSV emits the full per-φ result breakdown of one curve —
// every intermediate of the translation — as CSV.
func WriteResultsCSV(w io.Writer, c Curve) error {
	if len(c.Results) == 0 {
		return fmt.Errorf("experiments: curve %q has no results", c.Label)
	}
	cw := csv.NewWriter(w)
	header := []string{
		"phi", "Y", "EWPhi", "YS1", "YS2", "gamma", "PS1",
		"PA1", "int_h", "int_tau_h", "int_int_h_f", "int_f",
		"rho1", "rho2",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
	for _, r := range c.Results {
		row := []string{
			f(r.Phi), f(r.Y), f(r.EWPhi), f(r.YS1), f(r.YS2), f(r.Gamma), f(r.PS1),
			f(r.Gd.PA1), f(r.Gd.IntH), f(r.Gd.IntTauH), f(r.Gd.IntHF), f(r.IntF),
			f(r.Rho1), f(r.Rho2),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CurvesByFigure returns the curve set of a figure experiment id, for
// callers that want data rather than a report.
func CurvesByFigure(id string) ([]Curve, error) {
	switch id {
	case "fig9":
		return Figure9Curves()
	case "fig10":
		return Figure10Curves()
	case "fig11":
		return Figure11Curves()
	case "fig11x":
		return Figure11xCurves()
	case "fig12":
		return Figure12Curves()
	default:
		return nil, fmt.Errorf("experiments: %q is not a figure experiment", id)
	}
}
