package experiments

import (
	"fmt"
	"io"
	"math"

	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

// StaggerRow is one line of the simultaneous-vs-staggered upgrade study.
type StaggerRow struct {
	K                 int     // components upgraded at once
	SurvivalTogether  float64 // all k upgraded simultaneously, one horizon θ
	SurvivalStaggered float64 // upgraded one per sub-horizon θ/k, sequentially
}

// StaggerStudy evaluates, on an n-process system, the mission-survival
// probability through θ when k of the components carry fresh upgrades —
// either all at once, or staggered one at a time with each fresh component
// maturing to µ_old after its own sub-horizon survives.
//
// This exercises RMNdN, the n-process extension of the paper's normal-mode
// model, and answers a question the single-cycle study cannot: whether the
// risk of several upgrades compounds (it multiplies: simultaneous k-fold
// upgrades survive like exp(−k·µ_new·θ), staggering like
// exp(−µ_new·θ) — independent of k).
func StaggerStudy(p mdcd.Params, n int) ([]StaggerRow, error) {
	if n < 2 {
		return nil, fmt.Errorf("experiments: stagger study needs n >= 2, got %d", n)
	}
	rows := make([]StaggerRow, 0, n)
	for k := 1; k <= n; k++ {
		mus := make([]float64, n)
		for i := range mus {
			if i < k {
				mus[i] = p.MuNew
			} else {
				mus[i] = p.MuOld
			}
		}
		together, err := survival(p, mus, p.Theta)
		if err != nil {
			return nil, err
		}

		// Staggered: k sequential sub-horizons of length θ/k, each with
		// exactly one fresh component (the previous one having matured).
		// Survival multiplies across sub-horizons by the renewal argument
		// the paper uses for its own X″ decomposition.
		musStag := make([]float64, n)
		for i := range musStag {
			musStag[i] = p.MuOld
		}
		musStag[0] = p.MuNew
		perPhase, err := survival(p, musStag, p.Theta/float64(k))
		if err != nil {
			return nil, err
		}
		rows = append(rows, StaggerRow{
			K:                 k,
			SurvivalTogether:  together,
			SurvivalStaggered: math.Pow(perPhase, float64(k)),
		})
	}
	return rows, nil
}

func survival(p mdcd.Params, mus []float64, t float64) (float64, error) {
	nd, err := mdcd.BuildRMNdN(p, mus)
	if err != nil {
		return 0, err
	}
	return nd.NoFailureProbability(t)
}

func init() {
	register(Experiment{
		ID:    "ext-stagger",
		Title: "Extension: simultaneous vs staggered upgrades in a 4-process system (RMNdN)",
		Paper: "beyond the paper's 2-process study; direction of its reference [16] (general distributed systems)",
		Run: func(w io.Writer) error {
			p := mdcd.DefaultParams()
			const n = 4
			rows, err := StaggerStudy(p, n)
			if err != nil {
				return err
			}
			table := [][]string{{"upgrades k", "P(survive theta), simultaneous", "P(survive theta), staggered"}}
			for _, r := range rows {
				table = append(table, []string{
					fmt.Sprintf("%d", r.K),
					fmt.Sprintf("%.4f", r.SurvivalTogether),
					fmt.Sprintf("%.4f", r.SurvivalStaggered),
				})
			}
			fmt.Fprintf(w, "Upgrading k of %d components (theta=%.0f, mu_new=%g, unguarded):\n\n", n, p.Theta, p.MuNew)
			fmt.Fprint(w, textplot.Table(table))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "finding: simultaneous upgrade risk compounds multiplicatively in k,")
			fmt.Fprintln(w, "while staggering holds mission survival at the single-upgrade level —")
			fmt.Fprintln(w, "the quantitative case for the one-component-at-a-time GSU doctrine the")
			fmt.Fprintln(w, "paper's methodology assumes.")
			return nil
		},
	})
}
