package experiments

import (
	"fmt"
	"io"
	"strconv"

	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

// Table1Measures solves the four Table 1 constituent measures in RMGd at
// the given φ values under the base parameters.
func Table1Measures(phis []float64) ([]mdcd.GdMeasures, error) {
	gd, err := mdcd.BuildRMGd(mdcd.DefaultParams())
	if err != nil {
		return nil, err
	}
	out := make([]mdcd.GdMeasures, 0, len(phis))
	for _, phi := range phis {
		m, err := gd.Measures(phi)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Table2Measures solves the Table 2 overhead measures for both of the
// paper's (α, β) settings.
func Table2Measures() (fast, slow mdcd.GpMeasures, err error) {
	p := mdcd.DefaultParams()
	gpFast, err := mdcd.BuildRMGp(p)
	if err != nil {
		return fast, slow, err
	}
	if fast, err = gpFast.Measures(); err != nil {
		return fast, slow, err
	}
	p.Alpha, p.Beta = 2500, 2500
	gpSlow, err := mdcd.BuildRMGp(p)
	if err != nil {
		return fast, slow, err
	}
	slow, err = gpSlow.Measures()
	return fast, slow, err
}

func init() {
	register(Experiment{
		ID:    "table1",
		Title: "Table 1: constituent measures and SAN reward structures in RMGd",
		Paper: "four predicate-rate reward structures over (detected, failure); solved as instant-of-time and accumulated rewards",
		Run: func(w io.Writer) error {
			phis := []float64{1000, 3000, 5000, 7000, 9000, 10000}
			ms, err := Table1Measures(phis)
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Table 1 reproduction: RMGd constituent measures (base parameters)")
			fmt.Fprintln(w)
			fmt.Fprintln(w, "Reward structures (predicate -> rate), as published:")
			fmt.Fprint(w, textplot.Table([][]string{
				{"measure", "reward type", "predicate", "rate"},
				{"int h", "instant-of-time at phi", "detected==1 && failure==0", "1"},
				{"int tau*h", "accumulated over [0,phi]", "detected==0", "1"},
				{"", "", "detected==0 && failure==1", "-1"},
				{"int int h*f", "instant-of-time at phi", "detected==1 && failure==1", "1"},
				{"P(X'_phi in A'_1)", "instant-of-time at phi", "detected==0 && failure==0", "1"},
			}))
			fmt.Fprintln(w)
			rows := [][]string{{"phi", "int h", "int tau*h", "int int h*f", "P(A'_1)", "P(undetected fail)", "sum"}}
			for i, phi := range phis {
				m := ms[i]
				rows = append(rows, []string{
					strconv.FormatFloat(phi, 'f', 0, 64),
					strconv.FormatFloat(m.IntH, 'f', 6, 64),
					strconv.FormatFloat(m.IntTauH, 'f', 1, 64),
					strconv.FormatFloat(m.IntHF, 'e', 3, 64),
					strconv.FormatFloat(m.PA1, 'f', 6, 64),
					strconv.FormatFloat(m.PUndetectedFailure, 'f', 6, 64),
					strconv.FormatFloat(m.IntH+m.IntHF+m.PA1+m.PUndetectedFailure, 'f', 6, 64),
				})
			}
			fmt.Fprint(w, textplot.Table(rows))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "check: the four instant-of-time measures partition the state space (sum = 1).")
			return nil
		},
	})

	register(Experiment{
		ID:    "table2",
		Title: "Table 2: constituent measures and SAN reward structures in RMGp",
		Paper: "steady-state overheads; derived parameters rho1=0.98, rho2=0.95 at alpha=beta=6000 and rho1=0.95, rho2=0.90 at alpha=beta=2500",
		Run: func(w io.Writer) error {
			fast, slow, err := Table2Measures()
			if err != nil {
				return err
			}
			fmt.Fprintln(w, "Table 2 reproduction: RMGp steady-state overhead measures")
			fmt.Fprintln(w)
			fmt.Fprintln(w, "Reward structures (predicate -> rate), as published:")
			fmt.Fprint(w, textplot.Table([][]string{
				{"measure", "reward type", "predicate", "rate"},
				{"1-rho1", "steady-state instant-of-time", "P1nExt==1", "1"},
				{"1-rho2", "steady-state instant-of-time", "(P1nInt==1 && P2DB==0) || (P2Ext==1 && P2DB==1)", "1"},
			}))
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table([][]string{
				{"setting", "rho1 (measured)", "rho1 (paper)", "rho2 (measured)", "rho2 (paper)"},
				{"alpha=beta=6000", fmt.Sprintf("%.4f", fast.Rho1), "0.98", fmt.Sprintf("%.4f", fast.Rho2), "0.95"},
				{"alpha=beta=2500", fmt.Sprintf("%.4f", slow.Rho1), "0.95", fmt.Sprintf("%.4f", slow.Rho2), "0.90"},
			}))
			return nil
		},
	})

	register(Experiment{
		ID:    "table3",
		Title: "Table 3: parameter value assignment",
		Paper: "theta=10000, lambda=1200, mu_new=1e-4, mu_old=1e-8, c=0.95, p_ext=0.1, alpha=6000, beta=6000 (time in hours)",
		Run: func(w io.Writer) error {
			p := mdcd.DefaultParams()
			fmt.Fprintln(w, "Table 3 reproduction: base parameter assignment (time in hours)")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table([][]string{
				{"theta", "lambda", "mu_new", "mu_old", "c", "p_ext", "alpha", "beta"},
				{
					strconv.FormatFloat(p.Theta, 'g', -1, 64),
					strconv.FormatFloat(p.Lambda, 'g', -1, 64),
					strconv.FormatFloat(p.MuNew, 'g', -1, 64),
					strconv.FormatFloat(p.MuOld, 'g', -1, 64),
					strconv.FormatFloat(p.Coverage, 'g', -1, 64),
					strconv.FormatFloat(p.PExt, 'g', -1, 64),
					strconv.FormatFloat(p.Alpha, 'g', -1, 64),
					strconv.FormatFloat(p.Beta, 'g', -1, 64),
				},
			}))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "lambda=1200 => mean time between message sends is 3 s;")
			fmt.Fprintln(w, "alpha=beta=6000 => mean AT / checkpoint completion time is 600 ms.")
			return nil
		},
	})
}
