package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardedop/internal/robust"
)

// withTempExperiment registers a throwaway experiment and removes it on
// cleanup so the suite seen by other tests is unchanged.
func withTempExperiment(t *testing.T, e Experiment) {
	t.Helper()
	register(e)
	t.Cleanup(func() { delete(registry, e.ID) })
}

// fastExperiments narrows the registry to a cheap subset plus the
// injected ones, restoring the full registry on cleanup, so RunAll tests
// do not drag in Monte-Carlo suites.
func fastExperiments(t *testing.T, keep ...string) {
	t.Helper()
	saved := registry
	registry = map[string]Experiment{}
	for _, id := range keep {
		if e, ok := saved[id]; ok {
			registry[id] = e
		}
	}
	t.Cleanup(func() { registry = saved })
}

func TestRunAllKeepGoingRecordsFailuresAndContinues(t *testing.T) {
	fastExperiments(t, "table3")
	withTempExperiment(t, Experiment{
		ID:    "aa-failing",
		Title: "injected failure",
		Run: func(w io.Writer) error {
			return errors.New("injected solver blowup")
		},
	})
	withTempExperiment(t, Experiment{
		ID:    "zz-panicking",
		Title: "injected panic",
		Run: func(w io.Writer) error {
			panic("index out of range")
		},
	})
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{KeepGoing: true})
	if err != nil {
		t.Fatalf("keep-going run aborted: %v", err)
	}
	if rep.Report.Failed() != 2 || rep.Report.Succeeded() != 1 {
		t.Fatalf("report: %s", rep.Summary())
	}
	failed := rep.FailedIDs()
	if failed[0] != "aa-failing" || failed[1] != "zz-panicking" {
		t.Errorf("failed ids = %v", failed)
	}
	if !errors.Is(rep.Report.Failures[1].Err, robust.ErrPanic) {
		t.Errorf("panic not classified: %v", rep.Report.Failures[1].Err)
	}
	// table3 ran despite aa-failing failing first.
	if !strings.Contains(sb.String(), "10000") {
		t.Errorf("surviving experiment produced no output:\n%s", sb.String())
	}
	if !strings.Contains(rep.Summary(), "aa-failing") {
		t.Errorf("summary does not name the failed experiment: %s", rep.Summary())
	}
}

func TestRunAllStopsWithoutKeepGoing(t *testing.T) {
	fastExperiments(t, "table3")
	withTempExperiment(t, Experiment{
		ID:    "aa-failing",
		Title: "injected failure",
		Run:   func(w io.Writer) error { return errors.New("boom") },
	})
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{})
	if err == nil {
		t.Fatal("strict run swallowed the failure")
	}
	if rep.Report.Succeeded() != 0 {
		t.Errorf("experiments ran past the failure: %s", rep.Summary())
	}
}

func TestRunAllCancellation(t *testing.T) {
	fastExperiments(t, "table3")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAll(ctx, io.Discard, RunOptions{KeepGoing: true})
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

// TestRunAllKeepGoingFailedCreateOmitsDividerAndReport is the regression
// for the stray-divider bug: an experiment whose output file cannot be
// created must be recorded as failed and contribute neither report text
// nor a divider, while the rest of the suite still runs.
func TestRunAllKeepGoingFailedCreateOmitsDividerAndReport(t *testing.T) {
	fastExperiments(t, "table3")
	withTempExperiment(t, Experiment{
		ID:    "aa-blocked",
		Title: "output file cannot be created",
		Run: func(w io.Writer) error {
			fmt.Fprintln(w, "MUST-NOT-APPEAR")
			return nil
		},
	})
	dir := t.TempDir()
	// A directory squatting on the output path makes os.Create fail.
	if err := os.Mkdir(filepath.Join(dir, "aa-blocked.txt"), 0o755); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{
		KeepGoing: true, OutDir: dir, Divider: "=====",
	})
	if err != nil {
		t.Fatalf("keep-going run aborted on a failed create: %v", err)
	}
	if ids := rep.FailedIDs(); len(ids) != 1 || ids[0] != "aa-blocked" {
		t.Fatalf("failed ids = %v, want [aa-blocked]", ids)
	}
	out := sb.String()
	if strings.Contains(out, "MUST-NOT-APPEAR") {
		t.Error("experiment with failed output file still produced report text")
	}
	if strings.Contains(out, "=====") {
		t.Errorf("stray divider emitted for an empty report:\n%s", out)
	}
	if !strings.Contains(out, "10000") {
		t.Errorf("surviving experiment missing from output:\n%s", out)
	}
	if _, err := os.Stat(filepath.Join(dir, "table3.txt")); err != nil {
		t.Errorf("surviving experiment's file missing: %v", err)
	}
}

// TestRunAllParallelOutputInIDOrder runs experiments that deliberately
// finish in reverse order on a multi-worker pool and checks the emitted
// reports still appear in experiment-id order with one divider between
// each pair.
func TestRunAllParallelOutputInIDOrder(t *testing.T) {
	fastExperiments(t) // empty baseline
	ccDone := make(chan struct{})
	bbDone := make(chan struct{})
	withTempExperiment(t, Experiment{
		ID: "aa-last", Title: "finishes last",
		Run: func(w io.Writer) error {
			<-bbDone
			fmt.Fprintln(w, "REPORT-aa")
			return nil
		},
	})
	withTempExperiment(t, Experiment{
		ID: "bb-middle", Title: "finishes second",
		Run: func(w io.Writer) error {
			<-ccDone
			fmt.Fprintln(w, "REPORT-bb")
			close(bbDone)
			return nil
		},
	})
	withTempExperiment(t, Experiment{
		ID: "cc-first", Title: "finishes first",
		Run: func(w io.Writer) error {
			fmt.Fprintln(w, "REPORT-cc")
			close(ccDone)
			return nil
		},
	})
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{
		KeepGoing: true, Workers: 3, Divider: "-----",
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report.Succeeded() != 3 {
		t.Fatalf("report: %s", rep.Summary())
	}
	out := sb.String()
	ia := strings.Index(out, "REPORT-aa")
	ib := strings.Index(out, "REPORT-bb")
	ic := strings.Index(out, "REPORT-cc")
	if ia < 0 || ib < 0 || ic < 0 || !(ia < ib && ib < ic) {
		t.Errorf("reports not in id order (aa@%d bb@%d cc@%d):\n%s", ia, ib, ic, out)
	}
	if n := strings.Count(out, "-----"); n != 2 {
		t.Errorf("divider count = %d, want 2:\n%s", n, out)
	}
}

func TestRunAllWritesPerExperimentFiles(t *testing.T) {
	fastExperiments(t, "table3")
	dir := t.TempDir()
	var sb strings.Builder
	if _, err := RunAll(context.Background(), &sb, RunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/table3.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "10000") {
		t.Errorf("table3.txt incomplete:\n%s", data)
	}
}
