package experiments

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"guardedop/internal/robust"
)

// withTempExperiment registers a throwaway experiment and removes it on
// cleanup so the suite seen by other tests is unchanged.
func withTempExperiment(t *testing.T, e Experiment) {
	t.Helper()
	register(e)
	t.Cleanup(func() { delete(registry, e.ID) })
}

// fastExperiments narrows the registry to a cheap subset plus the
// injected ones, restoring the full registry on cleanup, so RunAll tests
// do not drag in Monte-Carlo suites.
func fastExperiments(t *testing.T, keep ...string) {
	t.Helper()
	saved := registry
	registry = map[string]Experiment{}
	for _, id := range keep {
		if e, ok := saved[id]; ok {
			registry[id] = e
		}
	}
	t.Cleanup(func() { registry = saved })
}

func TestRunAllKeepGoingRecordsFailuresAndContinues(t *testing.T) {
	fastExperiments(t, "table3")
	withTempExperiment(t, Experiment{
		ID:    "aa-failing",
		Title: "injected failure",
		Run: func(w io.Writer) error {
			return errors.New("injected solver blowup")
		},
	})
	withTempExperiment(t, Experiment{
		ID:    "zz-panicking",
		Title: "injected panic",
		Run: func(w io.Writer) error {
			panic("index out of range")
		},
	})
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{KeepGoing: true})
	if err != nil {
		t.Fatalf("keep-going run aborted: %v", err)
	}
	if rep.Report.Failed() != 2 || rep.Report.Succeeded() != 1 {
		t.Fatalf("report: %s", rep.Summary())
	}
	failed := rep.FailedIDs()
	if failed[0] != "aa-failing" || failed[1] != "zz-panicking" {
		t.Errorf("failed ids = %v", failed)
	}
	if !errors.Is(rep.Report.Failures[1].Err, robust.ErrPanic) {
		t.Errorf("panic not classified: %v", rep.Report.Failures[1].Err)
	}
	// table3 ran despite aa-failing failing first.
	if !strings.Contains(sb.String(), "10000") {
		t.Errorf("surviving experiment produced no output:\n%s", sb.String())
	}
	if !strings.Contains(rep.Summary(), "aa-failing") {
		t.Errorf("summary does not name the failed experiment: %s", rep.Summary())
	}
}

func TestRunAllStopsWithoutKeepGoing(t *testing.T) {
	fastExperiments(t, "table3")
	withTempExperiment(t, Experiment{
		ID:    "aa-failing",
		Title: "injected failure",
		Run:   func(w io.Writer) error { return errors.New("boom") },
	})
	var sb strings.Builder
	rep, err := RunAll(context.Background(), &sb, RunOptions{})
	if err == nil {
		t.Fatal("strict run swallowed the failure")
	}
	if rep.Report.Succeeded() != 0 {
		t.Errorf("experiments ran past the failure: %s", rep.Summary())
	}
}

func TestRunAllCancellation(t *testing.T) {
	fastExperiments(t, "table3")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunAll(ctx, io.Discard, RunOptions{KeepGoing: true})
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
}

func TestRunAllWritesPerExperimentFiles(t *testing.T) {
	fastExperiments(t, "table3")
	dir := t.TempDir()
	var sb strings.Builder
	if _, err := RunAll(context.Background(), &sb, RunOptions{OutDir: dir}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/table3.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "10000") {
		t.Errorf("table3.txt incomplete:\n%s", data)
	}
}
