package experiments

import (
	"encoding/csv"
	"strings"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
)

func smallCurve(t *testing.T) Curve {
	t.Helper()
	a, err := core.NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	phis := []float64{0, 5000, 10000}
	results, err := a.Curve(phis)
	if err != nil {
		t.Fatal(err)
	}
	c := Curve{Label: "base", Phis: phis, Results: results}
	for _, r := range results {
		c.Y = append(c.Y, r.Y)
	}
	return c
}

func TestWriteCurvesCSV(t *testing.T) {
	c := smallCurve(t)
	var b strings.Builder
	if err := WriteCurvesCSV(&b, []Curve{c}); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 {
		t.Fatalf("got %d rows, want header + 3", len(records))
	}
	if records[0][0] != "phi" || records[0][1] != "Y[base]" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][1] != "1" {
		t.Errorf("Y(0) cell = %q, want 1", records[1][1])
	}
}

func TestWriteCurvesCSVErrors(t *testing.T) {
	if err := WriteCurvesCSV(&strings.Builder{}, nil); err == nil {
		t.Error("empty curve list accepted")
	}
	c := smallCurve(t)
	mismatched := c
	mismatched.Phis = c.Phis[:2]
	if err := WriteCurvesCSV(&strings.Builder{}, []Curve{c, mismatched}); err == nil {
		t.Error("mismatched grids accepted")
	}
}

func TestWriteResultsCSV(t *testing.T) {
	c := smallCurve(t)
	var b strings.Builder
	if err := WriteResultsCSV(&b, c); err != nil {
		t.Fatal(err)
	}
	records, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 4 || len(records[0]) != 14 {
		t.Fatalf("got %dx%d cells", len(records), len(records[0]))
	}
	if err := WriteResultsCSV(&strings.Builder{}, Curve{Label: "empty"}); err == nil {
		t.Error("empty curve accepted")
	}
}

func TestCurvesByFigure(t *testing.T) {
	curves, err := CurvesByFigure("fig12")
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 2 {
		t.Errorf("fig12 has %d curves, want 2", len(curves))
	}
	if _, err := CurvesByFigure("table1"); err == nil {
		t.Error("non-figure id accepted")
	}
}
