package experiments

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"guardedop/internal/robust"
)

// RunOptions configures a batch run of every registered experiment.
type RunOptions struct {
	// KeepGoing skips a failed experiment (recording it in the report)
	// instead of aborting the batch at the first failure. Without
	// KeepGoing the batch runs sequentially (so nothing runs past the
	// first failure); with it, experiments run on a bounded worker pool.
	KeepGoing bool
	// OutDir, when non-empty, additionally writes each experiment's report
	// to <OutDir>/<id>.txt.
	OutDir string
	// Divider, when non-empty, is printed between consecutive experiment
	// reports.
	Divider string
	// Workers bounds how many experiments run concurrently when KeepGoing
	// is set: 0 (the default) uses every core, 1 runs sequentially. Each
	// experiment writes into its own buffer; the buffers are emitted to w
	// in experiment-id order once the batch has drained, so the output is
	// identical for every worker count.
	Workers int
}

// RunReport summarises a batch run of the experiment suite.
type RunReport struct {
	// IDs lists every experiment submitted, in run order.
	IDs []string
	// Report carries the per-experiment failures, indexed into IDs.
	Report *robust.Report
}

// FailedIDs returns the ids of the experiments that failed.
func (r *RunReport) FailedIDs() []string {
	out := make([]string, 0, r.Report.Failed())
	for _, f := range r.Report.Failures {
		out = append(out, r.IDs[f.Index])
	}
	return out
}

// Summary renders a one-line-per-failure account naming experiment ids.
func (r *RunReport) Summary() string {
	if r.Report.Failed() == 0 {
		return fmt.Sprintf("all %d experiments succeeded", r.Report.Total)
	}
	s := fmt.Sprintf("%d/%d experiments failed:", r.Report.Failed(), r.Report.Total)
	for _, f := range r.Report.Failures {
		s += fmt.Sprintf("\n  %s: %v", r.IDs[f.Index], f.Err)
	}
	return s
}

// RunAll executes every registered experiment in id order, writing each
// report to w (and optionally to per-experiment files). A panicking or
// failing experiment is recorded in the returned report; with
// opts.KeepGoing the batch continues past it, otherwise the batch stops
// there. The error is non-nil when the context is canceled, when
// KeepGoing is off and an experiment failed, or when an output file
// cannot be created.
//
// Each experiment renders into its own buffer and the buffers are written
// to w in experiment-id order after the batch drains, separated by
// opts.Divider — so concurrent experiments (opts.Workers) never
// interleave their output, and a divider is only ever emitted together
// with the report that follows it. An experiment that fails mid-report
// still has the partial output it produced emitted, exactly as the
// sequential runner did; an experiment whose output file cannot be
// created produces no output and therefore no divider.
//
// The RunReport is always returned (also alongside a non-nil error) so
// callers can tell which experiments completed.
func RunAll(ctx context.Context, w io.Writer, opts RunOptions) (*RunReport, error) {
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return &RunReport{Report: &robust.Report{}}, err
		}
	}
	all := All()
	rep := &RunReport{IDs: make([]string, len(all))}
	for i, e := range all {
		rep.IDs[i] = e.ID
	}
	// One buffer per experiment, indexed like the batch, written only by
	// the worker that owns the item.
	bufs := make([]bytes.Buffer, len(all))
	pr, err := robust.RunBatch(ctx, indicesOf(all), func(_ context.Context, i int) (struct{}, error) {
		e := all[i]
		out := io.Writer(&bufs[i])
		var file *os.File
		if opts.OutDir != "" {
			var err error
			file, err = os.Create(filepath.Join(opts.OutDir, e.ID+".txt"))
			if err != nil {
				return struct{}{}, err
			}
			out = io.MultiWriter(&bufs[i], file)
		}
		err := e.Run(out)
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return struct{}{}, nil
	}, robust.BatchOptions{StopOnError: !opts.KeepGoing, Workers: opts.Workers})
	rep.Report = pr.Report

	first := true
	for i := range bufs {
		if bufs[i].Len() == 0 {
			continue
		}
		if !first && opts.Divider != "" {
			if _, werr := fmt.Fprintf(w, "\n%s\n\n", opts.Divider); werr != nil {
				return rep, werr
			}
		}
		first = false
		if _, werr := w.Write(bufs[i].Bytes()); werr != nil {
			return rep, werr
		}
	}
	return rep, err
}

// indicesOf returns [0, len(s)) so a batch can range over item indices
// while the per-item state lives in slices owned by the caller.
func indicesOf(s []Experiment) []int {
	idx := make([]int, len(s))
	for i := range idx {
		idx[i] = i
	}
	return idx
}
