package experiments

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"guardedop/internal/robust"
)

// RunOptions configures a batch run of every registered experiment.
type RunOptions struct {
	// KeepGoing skips a failed experiment (recording it in the report)
	// instead of aborting the batch at the first failure.
	KeepGoing bool
	// OutDir, when non-empty, additionally writes each experiment's report
	// to <OutDir>/<id>.txt.
	OutDir string
	// Divider, when non-empty, is printed between consecutive experiment
	// reports.
	Divider string
}

// RunReport summarises a batch run of the experiment suite.
type RunReport struct {
	// IDs lists every experiment submitted, in run order.
	IDs []string
	// Report carries the per-experiment failures, indexed into IDs.
	Report *robust.Report
}

// FailedIDs returns the ids of the experiments that failed.
func (r *RunReport) FailedIDs() []string {
	out := make([]string, 0, r.Report.Failed())
	for _, f := range r.Report.Failures {
		out = append(out, r.IDs[f.Index])
	}
	return out
}

// Summary renders a one-line-per-failure account naming experiment ids.
func (r *RunReport) Summary() string {
	if r.Report.Failed() == 0 {
		return fmt.Sprintf("all %d experiments succeeded", r.Report.Total)
	}
	s := fmt.Sprintf("%d/%d experiments failed:", r.Report.Failed(), r.Report.Total)
	for _, f := range r.Report.Failures {
		s += fmt.Sprintf("\n  %s: %v", r.IDs[f.Index], f.Err)
	}
	return s
}

// RunAll executes every registered experiment in id order, writing each
// report to w (and optionally to per-experiment files). A panicking or
// failing experiment is recorded in the returned report; with
// opts.KeepGoing the batch continues past it, otherwise the batch stops
// there. The error is non-nil when the context is canceled, when
// KeepGoing is off and an experiment failed, or when an output file
// cannot be created.
//
// The RunReport is always returned (also alongside a non-nil error) so
// callers can tell which experiments completed.
func RunAll(ctx context.Context, w io.Writer, opts RunOptions) (*RunReport, error) {
	if opts.OutDir != "" {
		if err := os.MkdirAll(opts.OutDir, 0o755); err != nil {
			return &RunReport{Report: &robust.Report{}}, err
		}
	}
	all := All()
	rep := &RunReport{IDs: make([]string, len(all))}
	for i, e := range all {
		rep.IDs[i] = e.ID
	}
	first := true
	pr, err := robust.RunBatch(ctx, all, func(_ context.Context, e Experiment) (struct{}, error) {
		if !first && opts.Divider != "" {
			fmt.Fprintf(w, "\n%s\n\n", opts.Divider)
		}
		first = false
		out := w
		var file *os.File
		if opts.OutDir != "" {
			var err error
			file, err = os.Create(filepath.Join(opts.OutDir, e.ID+".txt"))
			if err != nil {
				return struct{}{}, err
			}
			out = io.MultiWriter(w, file)
		}
		err := e.Run(out)
		if file != nil {
			if cerr := file.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			return struct{}{}, fmt.Errorf("%s: %w", e.ID, err)
		}
		return struct{}{}, nil
	}, robust.BatchOptions{StopOnError: !opts.KeepGoing})
	rep.Report = pr.Report
	return rep, err
}
