package experiments

import (
	"math"
	"testing"

	"guardedop/internal/core"
)

func TestGammaAblationOrdering(t *testing.T) {
	curves, err := GammaAblation()
	if err != nil {
		t.Fatal(err)
	}
	paper := curves[core.GammaPaperTauBar]
	cond := curves[core.GammaConditionalMean]
	none := curves[core.GammaNone]
	if len(paper.Y) != len(cond.Y) || len(cond.Y) != len(none.Y) {
		t.Fatal("curve lengths differ")
	}
	for i := range paper.Y {
		if paper.Phis[i] == 0 {
			// All policies coincide at phi=0 (Y=1).
			if math.Abs(paper.Y[i]-1) > 1e-9 || math.Abs(none.Y[i]-1) > 1e-9 {
				t.Errorf("Y(0) != 1 under some policy")
			}
			continue
		}
		if !(paper.Y[i] <= cond.Y[i]+1e-12 && cond.Y[i] <= none.Y[i]+1e-12) {
			t.Errorf("policy ordering violated at phi=%v: %v, %v, %v",
				paper.Phis[i], paper.Y[i], cond.Y[i], none.Y[i])
		}
	}
	// The milder the discount, the later the optimum.
	phiPaper, _ := paper.Optimal()
	phiNone, _ := none.Optimal()
	if phiNone < phiPaper {
		t.Errorf("no-discount optimum %v left of paper optimum %v", phiNone, phiPaper)
	}
}

func TestPhaseAblationInsensitive(t *testing.T) {
	ms, err := PhaseAblation([]int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms[1].Rho1-ms[4].Rho1) > 5e-4 || math.Abs(ms[1].Rho2-ms[4].Rho2) > 5e-4 {
		t.Errorf("Erlang stages moved rho: %+v vs %+v", ms[1], ms[4])
	}
}
