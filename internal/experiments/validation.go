package experiments

import (
	"fmt"
	"io"

	"guardedop/internal/textplot"
	"guardedop/internal/uncertainty"
)

// ValidationRow summarises the duration decision after one validation
// campaign length.
type ValidationRow struct {
	ExposureHours float64
	PosteriorMean float64
	PhiLo, PhiHi  float64 // 5% / 95% posterior quantiles of phi*
	RobustPhi     float64
	RobustEY      float64
}

// ValidationStudy quantifies the value of onboard validation for the
// duration decision: a fixed prior over µ_new is updated by fault-free
// validation campaigns of increasing length, and each posterior is
// propagated to the φ* distribution. Fault-free exposure rescales the
// posterior downward without sharpening its relative spread (the Gamma
// shape only grows when faults are observed), so its value lies in moving
// the decision, not in certifying it.
func ValidationStudy(prior uncertainty.Gamma, exposures []float64, opts uncertainty.PropagateOptions) ([]ValidationRow, error) {
	rows := make([]ValidationRow, 0, len(exposures))
	for _, hours := range exposures {
		prop, posterior, err := UncertaintyStudy(prior, 0, hours, opts)
		if err != nil {
			return nil, err
		}
		rows = append(rows, ValidationRow{
			ExposureHours: hours,
			PosteriorMean: posterior.Mean(),
			PhiLo:         uncertainty.Quantile(prop.PhiStars, 0.05),
			PhiHi:         uncertainty.Quantile(prop.PhiStars, 0.95),
			RobustPhi:     prop.RobustPhi,
			RobustEY:      prop.RobustEY,
		})
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "ext-validation",
		Title: "Extension: how much onboard validation narrows the duration decision",
		Paper: "Figure 1's first GSU stage; the paper uses validation to fix mu_new, this quantifies the residual spread",
		Run: func(w io.Writer) error {
			prior := uncertainty.Gamma{Shape: 2, Rate: 1e4}
			exposures := []float64{0, 2500, 10000, 40000}
			rows, err := ValidationStudy(prior, exposures,
				uncertainty.PropagateOptions{Samples: 120, Seed: 11, GridPoints: 10})
			if err != nil {
				return err
			}
			table := [][]string{{"validation hours", "posterior mean mu", "phi* 5%-95%", "robust phi", "robust E[Y]"}}
			for _, r := range rows {
				table = append(table, []string{
					fmt.Sprintf("%.0f", r.ExposureHours),
					fmt.Sprintf("%.2e", r.PosteriorMean),
					fmt.Sprintf("%.0f - %.0f", r.PhiLo, r.PhiHi),
					fmt.Sprintf("%.0f", r.RobustPhi),
					fmt.Sprintf("%.4f", r.RobustEY),
				})
			}
			fmt.Fprintln(w, "Fault-free onboard validation of increasing length, prior Gamma(2, 1e4):")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table(table))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "reading: fault-free validation shifts the whole posterior down (robust")
			fmt.Fprintln(w, "phi 9000 -> 5000 here) but does NOT sharpen it in relative terms — with")
			fmt.Fprintln(w, "zero observed faults the Gamma shape never grows, so the coefficient of")
			fmt.Fprintln(w, "variation is stuck at the prior's. Long quiet campaigns therefore argue")
			fmt.Fprintln(w, "for SHORTER guarding (and eventually for skipping G-OP: note the 5%")
			fmt.Fprintln(w, "quantile reaching phi*=0) rather than for more certainty about any one")
			fmt.Fprintln(w, "duration. Committing to a single mu_new after validation, as the paper")
			fmt.Fprintln(w, "does, understates that residual spread.")
			return nil
		},
	})
}
