package experiments

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// -update regenerates the golden CSVs instead of comparing against them.
var update = flag.Bool("update", false, "rewrite golden experiment CSVs")

// The solver stack is fully deterministic, so the figure curves are pinned
// byte-for-byte. Any change to the models or solvers that moves a published
// curve must be deliberate: regenerate with `go test ./internal/experiments
// -run Golden -update` and review the diff.
func TestGoldenFigureCurves(t *testing.T) {
	for _, id := range []string{"fig9", "fig10", "fig11", "fig11x", "fig12", "ablation-gamma"} {
		id := id
		t.Run(id, func(t *testing.T) {
			curves, err := goldenCurves(id)
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := WriteCurvesCSV(&buf, curves); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", id+".golden.csv")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s deviates from golden data; run with -update if intentional.\ngot:\n%s\nwant:\n%s",
					id, buf.String(), string(want))
			}
		})
	}
}

// goldenCurves resolves a curve set for the golden tests: the figure
// experiments plus the deterministic gamma ablation.
func goldenCurves(id string) ([]Curve, error) {
	if id == "ablation-gamma" {
		byPolicy, err := GammaAblation()
		if err != nil {
			return nil, err
		}
		out := make([]Curve, 0, len(byPolicy))
		for _, c := range byPolicy {
			out = append(out, c)
		}
		// Map iteration order is random; sort by label for stable CSVs.
		for i := 1; i < len(out); i++ {
			for j := i; j > 0 && out[j].Label < out[j-1].Label; j-- {
				out[j], out[j-1] = out[j-1], out[j]
			}
		}
		return out, nil
	}
	return CurvesByFigure(id)
}
