package experiments

import (
	"testing"

	"guardedop/internal/uncertainty"
)

func TestValidationStudyShiftsDecisionDown(t *testing.T) {
	prior := uncertainty.Gamma{Shape: 2, Rate: 1e4}
	rows, err := ValidationStudy(prior, []float64{0, 40000},
		uncertainty.PropagateOptions{Samples: 60, Seed: 3, GridPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Fault-free exposure lowers the posterior mean and with it the robust
	// duration and achievable index.
	if rows[1].PosteriorMean >= rows[0].PosteriorMean {
		t.Errorf("posterior mean did not drop: %v -> %v", rows[0].PosteriorMean, rows[1].PosteriorMean)
	}
	if rows[1].RobustPhi > rows[0].RobustPhi {
		t.Errorf("robust phi did not drop: %v -> %v", rows[0].RobustPhi, rows[1].RobustPhi)
	}
	if rows[1].RobustEY >= rows[0].RobustEY {
		t.Errorf("robust E[Y] did not drop: %v -> %v", rows[0].RobustEY, rows[1].RobustEY)
	}
	if rows[0].PhiLo > rows[0].PhiHi {
		t.Errorf("quantile ordering broken: %v > %v", rows[0].PhiLo, rows[0].PhiHi)
	}
}

func TestValidationStudyPropagatesErrors(t *testing.T) {
	if _, err := ValidationStudy(uncertainty.Gamma{}, []float64{0}, uncertainty.PropagateOptions{}); err == nil {
		t.Error("invalid prior accepted")
	}
}
