package experiments

import (
	"fmt"
	"io"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

// RecoveryRow is one point of the recovery-success ablation.
type RecoveryRow struct {
	RecoverySuccess float64
	OptimalPhi      float64
	MaxY            float64
}

// RecoveryAblation relaxes the paper's perfect-recovery assumption: with
// probability 1−s a detected error's recovery fails (and the system fails
// with it). For each s it re-optimises φ.
func RecoveryAblation(successes []float64) ([]RecoveryRow, error) {
	rows := make([]RecoveryRow, 0, len(successes))
	for _, s := range successes {
		a, err := core.NewAnalyzerWithOptions(mdcd.DefaultParams(), core.Options{RecoverySuccess: s})
		if err != nil {
			return nil, err
		}
		best, err := a.OptimizePhi(core.OptimizeOptions{Tolerance: 50})
		if err != nil {
			return nil, err
		}
		rows = append(rows, RecoveryRow{RecoverySuccess: s, OptimalPhi: best.Phi, MaxY: best.Y})
	}
	return rows, nil
}

func init() {
	register(Experiment{
		ID:    "ablation-recovery",
		Title: "Ablation: imperfect error recovery (paper assumes recovery always succeeds)",
		Paper: "\"the system will recover from an error successfully as long as the detection is successful\" (Section 2)",
		Run: func(w io.Writer) error {
			successes := []float64{1.0, 0.95, 0.8, 0.5, 0.2}
			rows, err := RecoveryAblation(successes)
			if err != nil {
				return err
			}
			table := [][]string{{"P(recovery succeeds)", "optimal phi", "max Y"}}
			for _, r := range rows {
				table = append(table, []string{
					fmt.Sprintf("%.2f", r.RecoverySuccess),
					fmt.Sprintf("%.0f", r.OptimalPhi),
					fmt.Sprintf("%.4f", r.MaxY),
				})
			}
			fmt.Fprintln(w, "Relaxing the perfect-recovery assumption (base parameters, re-optimised phi):")
			fmt.Fprintln(w)
			fmt.Fprint(w, textplot.Table(table))
			fmt.Fprintln(w)
			fmt.Fprintln(w, "reading: a failed recovery converts a would-be S2 path into a mission")
			fmt.Fprintln(w, "loss, so the achievable index degrades roughly like coverage degradation")
			fmt.Fprintln(w, "(compare Figure 11): detection and recovery quality enter Y through the")
			fmt.Fprintln(w, "same product c·s. The paper's assumption is benign when s is near one.")
			return nil
		},
	})
}
