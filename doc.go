// Package guardedop is a stochastic activity network (SAN) / Markov reward
// modelling toolkit built to reproduce, end to end, the DSN 2002 paper
// "Performability Analysis of Guarded-Operation Duration: A Translation
// Approach for Reward Model Solutions" (Tai, Sanders, Alkalai, Chau, Tso).
//
// The library lives under internal/ (this module is a self-contained
// reproduction artefact, not an importable dependency):
//
//   - internal/sparse, internal/ctmc: the numerical substrate — sparse
//     linear algebra, uniformization, matrix exponentials, steady-state
//     and absorbing-chain analysis.
//   - internal/san, internal/statespace, internal/reward: the modelling
//     substrate — SAN construction, reachability generation with
//     vanishing-marking elimination, and predicate-rate reward structures.
//   - internal/mdcd: the paper's three SAN reward models (RMGd, RMGp,
//     RMNd) of the message-driven confidence-driven protocol.
//   - internal/core: the paper's contribution — the successive model
//     translation that evaluates the performability index Y(φ).
//   - internal/sim: Monte-Carlo simulation of the monolithic process,
//     validating the translation.
//   - internal/experiments: one runnable reproduction per table and
//     figure of the paper's evaluation.
//
// The benchmark suite in bench_test.go regenerates every table and figure;
// cmd/gsueval, cmd/sandump and cmd/gsusim expose the same experiments on
// the command line. See README.md, DESIGN.md and EXPERIMENTS.md.
package guardedop
