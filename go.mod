module guardedop

go 1.22
