# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race selfcheck bench repro coverage clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the Monte-Carlo validation suites.
test-short:
	$(GO) test -short ./...

# Race-enabled short suite — the CI gate.
race:
	$(GO) test -race -short ./...

# Health gate: analyzer invariant suite + short simulator cross-check
# (exit code 2 on an invariant violation; see docs/ROBUSTNESS.md).
selfcheck:
	$(GO) run ./cmd/gsueval -selfcheck

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure report to stdout.
repro:
	$(GO) run ./cmd/gsueval -all

coverage:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
