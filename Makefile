# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench repro coverage clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the Monte-Carlo validation suites.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure report to stdout.
repro:
	$(GO) run ./cmd/gsueval -all

coverage:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt
