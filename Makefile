# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short race race-parallel lint fmt-check selfcheck modelcheck serve-smoke templates bench bench-curve bench-parametric bench-json bench-compare repro coverage clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Skips the Monte-Carlo validation suites.
test-short:
	$(GO) test -short ./...

# Race-enabled short suite — the CI gate.
race:
	$(GO) test -race -short ./...

# Race-enabled full suite for the packages that run on the worker pool
# (batch runner, posterior propagation, experiment suite) plus the trace
# collector they all report into, and the serving stack (coalescer,
# sharded caches, limiter, drain) whose whole value is concurrency —
# exercises the parallel paths the short suite skips.
# (-timeout raised: the Monte-Carlo suites exceed go test's default 10m
# under the race detector on small machines.)
race-parallel:
	$(GO) test -race -timeout 45m ./internal/robust ./internal/uncertainty ./internal/experiments ./internal/obs ./internal/serve

# End-to-end daemon smoke: boot gsuserve race-instrumented, replay a
# deterministic load script, force a saturation burst (429 + Retry-After,
# zero 5xx), and SIGTERM-drain cleanly. See docs/SERVING.md.
serve-smoke:
	bash scripts/serve_smoke.sh

# Static analysis gate: the domain linter (exit 1 on findings), go vet,
# and a gofmt cleanliness check. See docs/STATIC_ANALYSIS.md.
lint: vet fmt-check
	$(GO) run ./cmd/gsulint ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt: the following files need formatting:"; echo "$$out"; exit 1; fi

# Health gate: static model verification, analyzer invariant suite, and a
# short simulator cross-check (exit code 2 on an invariant violation; see
# docs/ROBUSTNESS.md and docs/STATIC_ANALYSIS.md).
selfcheck:
	$(GO) run ./cmd/gsueval -selfcheck

# Static model verification only: check the translated RMGd/RMGp/RMNd
# models (generator validity, reachability, reward bounds) without solving.
modelcheck:
	$(GO) run ./cmd/gsueval -modelcheck

# Scenario-template matrix: generate the N × guard-policy GSU family
# through internal/template (N ∈ {3,5,8} crossed with every guard
# policy; every generated state space is model-checked before any
# solve), sweep each instance, and collect the per-instance state-space
# statistics into templates-stats.txt — the CI artifact. See
# docs/TEMPLATES.md.
templates:
	bash scripts/templates_matrix.sh

bench:
	$(GO) test -bench=. -benchmem ./...

# Curve-engine vs per-point solver-budget comparison (docs/PERFORMANCE.md).
# -benchtime=1x keeps it a smoke test: one sweep each, with the
# solves/sweep metric surfaced through robust.Metrics / ctmc.SolveOps.
# The >=3x budget itself is asserted by TestCurveEngineSolveBudget.
bench-curve:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkCurve' -benchtime=1x -benchmem

# Closed-form parametric evaluator vs the numeric engine on a
# cache-defeating grid (docs/PARAMETRIC.md). The >=100x headroom itself
# is not asserted here — this surfaces the ns/op pair for the CI artifact.
bench-parametric:
	$(GO) test ./internal/core -run '^$$' -bench 'BenchmarkEvaluate(Parametric|Numeric)$$' -benchmem

# Continuous performance observatory (docs/BENCHMARKING.md): run the
# pinned gsubench suite and write the next BENCH_<seq>.json under
# bench/. Exit code 2 means a pinned counter rule failed in this run.
bench-json:
	$(GO) run ./cmd/gsubench -out bench

# Diff the two newest BENCH reports in bench/ — deterministic-counter
# regressions fail hard, wall clock only beyond the tolerance band.
# Run `make bench-json` twice around a change to produce the pair, or
# point OLD/NEW at explicit report files.
bench-compare:
	@if [ -n "$(OLD)" ] && [ -n "$(NEW)" ]; then \
		$(GO) run ./cmd/gsubench -compare "$(OLD)" "$(NEW)"; \
	else \
		set -- $$(ls bench/BENCH_*.json 2>/dev/null | sort | tail -2); \
		if [ $$# -lt 2 ]; then \
			echo "bench-compare: need two BENCH reports in bench/ (run make bench-json twice, or set OLD= NEW=)"; exit 1; fi; \
		$(GO) run ./cmd/gsubench -compare "$$1" "$$2"; \
	fi

# Regenerate every table/figure report to stdout.
repro:
	$(GO) run ./cmd/gsueval -all

coverage:
	$(GO) test -short -coverprofile=coverage.out ./...
	$(GO) tool cover -func=coverage.out | tail -1

clean:
	rm -f coverage.out test_output.txt bench_output.txt templates-stats.txt
