// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, regenerating the artefact on every iteration. Run
//
//	go test -bench=. -benchmem
//
// from the repository root. Each benchmark also sanity-checks the paper's
// qualitative result (optimum location / parameter bands) once, so a
// benchmark run doubles as a reproduction run.
package guardedop_test

import (
	"fmt"
	"testing"

	"guardedop/internal/core"
	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/sensitivity"
	"guardedop/internal/sim"
	"guardedop/internal/uncertainty"
)

// reportCurveMetrics records the optimum of each curve as benchmark metrics
// so `go test -bench` output shows the reproduced headline numbers.
func reportCurveMetrics(b *testing.B, curves []experiments.Curve) {
	b.Helper()
	for i, c := range curves {
		phi, y := c.Optimal()
		b.ReportMetric(phi, fmt.Sprintf("optPhi[%d]", i))
		b.ReportMetric(y, fmt.Sprintf("maxY[%d]", i))
	}
}

// BenchmarkTable1RMGdMeasures regenerates Table 1: the four constituent
// reward variables solved in RMGd across the φ grid.
func BenchmarkTable1RMGdMeasures(b *testing.B) {
	phis := []float64{1000, 3000, 5000, 7000, 9000, 10000}
	for i := 0; i < b.N; i++ {
		ms, err := experiments.Table1Measures(phis)
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != len(phis) || ms[3].IntH < 0.4 {
			b.Fatalf("Table 1 regeneration implausible: %+v", ms)
		}
	}
}

// BenchmarkTable2RMGpMeasures regenerates Table 2: the steady-state
// overhead measures at both (α, β) settings.
func BenchmarkTable2RMGpMeasures(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fast, slow, err := experiments.Table2Measures()
		if err != nil {
			b.Fatal(err)
		}
		if fast.Rho1 < 0.97 || slow.Rho2 > 0.92 {
			b.Fatalf("Table 2 out of band: fast=%+v slow=%+v", fast, slow)
		}
		if i == 0 {
			b.ReportMetric(fast.Rho1, "rho1@6000")
			b.ReportMetric(fast.Rho2, "rho2@6000")
			b.ReportMetric(slow.Rho1, "rho1@2500")
			b.ReportMetric(slow.Rho2, "rho2@2500")
		}
	}
}

// BenchmarkTable3BaseSolve builds the full composite base model under the
// Table 3 parameters and evaluates Y at the paper's optimal duration.
func BenchmarkTable3BaseSolve(b *testing.B) {
	for i := 0; i < b.N; i++ {
		a, err := core.NewAnalyzer(mdcd.DefaultParams())
		if err != nil {
			b.Fatal(err)
		}
		r, err := a.Evaluate(7000)
		if err != nil {
			b.Fatal(err)
		}
		if r.Y < 1.3 {
			b.Fatalf("Y(7000) = %v out of band", r.Y)
		}
	}
}

// BenchmarkFigure9FaultRate regenerates Figure 9 (both µ_new curves).
func BenchmarkFigure9FaultRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure9Curves()
		if err != nil {
			b.Fatal(err)
		}
		if phi, _ := curves[0].Optimal(); phi != 7000 {
			b.Fatalf("base optimum %v, want 7000", phi)
		}
		if phi, _ := curves[1].Optimal(); phi != 5000 {
			b.Fatalf("halved-mu optimum %v, want 5000", phi)
		}
		if i == 0 {
			reportCurveMetrics(b, curves)
		}
	}
}

// BenchmarkFigure10Overhead regenerates Figure 10 (both overhead settings).
func BenchmarkFigure10Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure10Curves()
		if err != nil {
			b.Fatal(err)
		}
		if phi, _ := curves[1].Optimal(); phi != 6000 {
			b.Fatalf("slow-safeguard optimum %v, want 6000", phi)
		}
		if i == 0 {
			reportCurveMetrics(b, curves)
		}
	}
}

// BenchmarkFigure11Coverage regenerates Figure 11 (c = 0.95, 0.75, 0.50).
func BenchmarkFigure11Coverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure11Curves()
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves {
			if phi, _ := c.Optimal(); phi != 6000 {
				b.Fatalf("%s optimum %v, want 6000", c.Label, phi)
			}
		}
		if i == 0 {
			reportCurveMetrics(b, curves)
		}
	}
}

// BenchmarkFigure11LowCoverage regenerates the Section 6 text experiments
// (c = 0.20 and 0.10).
func BenchmarkFigure11LowCoverage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure11xCurves()
		if err != nil {
			b.Fatal(err)
		}
		if _, y := curves[1].Optimal(); y > 1 {
			b.Fatalf("c=0.10 max Y = %v, want <= 1", y)
		}
		if i == 0 {
			reportCurveMetrics(b, curves)
		}
	}
}

// BenchmarkFigure12Horizon regenerates Figure 12 (θ = 5000, both µ_new).
func BenchmarkFigure12Horizon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Figure12Curves()
		if err != nil {
			b.Fatal(err)
		}
		if phi, _ := curves[0].Optimal(); phi != 2500 {
			b.Fatalf("theta=5000 optimum %v, want 2500", phi)
		}
		if i == 0 {
			reportCurveMetrics(b, curves)
		}
	}
}

// BenchmarkSafeguardCosts regenerates the impulse-reward cost-accounting
// experiment (expected AT/checkpoint frequencies on RMGp).
func BenchmarkSafeguardCosts(b *testing.B) {
	gp, err := mdcd.BuildRMGp(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rates, err := gp.SafeguardRates()
		if err != nil {
			b.Fatal(err)
		}
		if rates.P1nAT < 100 || rates.P1nAT > 130 {
			b.Fatalf("P1nAT rate %v out of band", rates.P1nAT)
		}
		if i == 0 {
			b.ReportMetric(rates.Total(), "ops/h")
		}
	}
}

// BenchmarkAblationGamma regenerates the γ-policy ablation curves.
func BenchmarkAblationGamma(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, err := experiments.GammaAblation()
		if err != nil {
			b.Fatal(err)
		}
		if len(curves) != 3 {
			b.Fatalf("got %d policies", len(curves))
		}
	}
}

// BenchmarkAblationPhases regenerates the Erlang-stage ablation of RMGp.
func BenchmarkAblationPhases(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ms, err := experiments.PhaseAblation([]int{1, 2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
		if len(ms) != 4 {
			b.Fatalf("got %d stage counts", len(ms))
		}
	}
}

// BenchmarkSensitivityTornado regenerates the parameter-sensitivity
// tornado around the Table 3 base point.
func BenchmarkSensitivityTornado(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := sensitivity.Analyze(mdcd.DefaultParams(), sensitivity.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if results[0].Parameter != sensitivity.Coverage && results[0].Parameter != sensitivity.MuNew {
			b.Fatalf("unexpected top parameter %s", results[0].Parameter)
		}
	}
}

// BenchmarkAblationRecovery regenerates the imperfect-recovery ablation.
func BenchmarkAblationRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RecoveryAblation([]float64{1.0, 0.5})
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].MaxY >= rows[0].MaxY {
			b.Fatal("imperfect recovery did not lower the achievable index")
		}
	}
}

// BenchmarkExtensionStagger regenerates the simultaneous-vs-staggered
// upgrade study on the 4-process RMNdN extension.
func BenchmarkExtensionStagger(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.StaggerStudy(mdcd.DefaultParams(), 4)
		if err != nil {
			b.Fatal(err)
		}
		if rows[3].SurvivalTogether > rows[3].SurvivalStaggered {
			b.Fatal("staggering did not dominate at k=4")
		}
		if i == 0 {
			b.ReportMetric(rows[3].SurvivalTogether, "P(survive)[k=4,together]")
			b.ReportMetric(rows[3].SurvivalStaggered, "P(survive)[k=4,staggered]")
		}
	}
}

// BenchmarkExtensionUncertainty regenerates the Bayesian posterior
// propagation of mu_new through the decision (reduced sample count).
func BenchmarkExtensionUncertainty(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prop, _, err := experiments.UncertaintyStudy(
			uncertainty.Gamma{Shape: 2, Rate: 1e4}, 0, 10000,
			uncertainty.PropagateOptions{Samples: 40, Seed: 3, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		if prop.RobustPhi <= 0 {
			b.Fatal("degenerate robust phi")
		}
	}
}

// benchmarkPropagate200 runs the paper-scale 200-draw posterior
// propagation at a fixed worker count; the Sequential/Parallel pair below
// measures the worker-pool speedup on the same workload (identical
// numbers by construction — see TestPropagateParallelMatchesSequential).
func benchmarkPropagate200(b *testing.B, workers int) {
	b.Helper()
	p := mdcd.DefaultParams()
	posterior := uncertainty.Gamma{Shape: 4, Rate: 4e4}
	for i := 0; i < b.N; i++ {
		prop, err := uncertainty.Propagate(p, posterior, uncertainty.PropagateOptions{
			Samples: 200, Seed: 3, GridPoints: 20, Workers: workers,
		})
		if err != nil {
			b.Fatal(err)
		}
		if prop.RobustPhi <= 0 || prop.SamplesUsed != 200 {
			b.Fatalf("degenerate propagation: phi=%g used=%d", prop.RobustPhi, prop.SamplesUsed)
		}
	}
}

// BenchmarkPropagate200Sequential is the single-worker baseline.
func BenchmarkPropagate200Sequential(b *testing.B) { benchmarkPropagate200(b, 1) }

// BenchmarkPropagate200Parallel uses the default worker count (every
// core); compare against the Sequential baseline for the pool speedup.
func BenchmarkPropagate200Parallel(b *testing.B) { benchmarkPropagate200(b, 0) }

// BenchmarkExtensionValidation regenerates the validation-value study
// (reduced sample count).
func BenchmarkExtensionValidation(b *testing.B) {
	prior := uncertainty.Gamma{Shape: 2, Rate: 1e4}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ValidationStudy(prior, []float64{0, 40000},
			uncertainty.PropagateOptions{Samples: 30, Seed: 5, GridPoints: 10})
		if err != nil {
			b.Fatal(err)
		}
		if rows[1].RobustPhi > rows[0].RobustPhi {
			b.Fatal("validation did not shift the decision down")
		}
	}
}

// BenchmarkOptimizePhi measures the continuous golden-section optimum
// search used by the sensitivity and cost experiments.
func BenchmarkOptimizePhi(b *testing.B) {
	a, err := core.NewAnalyzer(mdcd.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best, err := a.OptimizePhi(core.OptimizeOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if best.Phi < 6000 || best.Phi > 7500 {
			b.Fatalf("optimum %v out of band", best.Phi)
		}
	}
}

// BenchmarkSimulationCrossCheck runs the translation-vs-simulation
// validation at one φ point (scaled parameters, reduced path count).
func BenchmarkSimulationCrossCheck(b *testing.B) {
	cfg := experiments.DefaultValsimConfig()
	analyzer, err := core.NewAnalyzer(cfg.Params)
	if err != nil {
		b.Fatal(err)
	}
	rho1, rho2 := analyzer.Rho()
	ana, err := analyzer.Evaluate(600)
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewSimulator(cfg.Params, rho1, rho2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est, err := s.EstimateY(600, sim.Options{
			Paths: 2000, Seed: int64(i + 1), GammaMode: sim.GammaFixed, Gamma: ana.Gamma,
		})
		if err != nil {
			b.Fatal(err)
		}
		if diff := est.Y - ana.Y; diff > 8*est.YStdErr+0.05*ana.Y || -diff > 8*est.YStdErr+0.05*ana.Y {
			b.Fatalf("simulated Y = %v ± %v, analytic %v", est.Y, est.YStdErr, ana.Y)
		}
	}
}
