package guardedop_test

import (
	"os/exec"
	"strings"
	"testing"
)

// The examples are documentation that must not rot: each one is executed
// end-to-end and its key output line checked. Slow Monte-Carlo examples are
// skipped under -short.
func TestExamplesRun(t *testing.T) {
	cases := []struct {
		dir   string
		want  string
		heavy bool
	}{
		{dir: "quickstart", want: "long-run availability"},
		{dir: "gopduration", want: "optimal duration: phi = 7000"},
		{dir: "atcoverage", want: "skip G-OP entirely"},
		{dir: "campaign", want: "campaign-level index"},
		{dir: "checkpointing", want: "Young's approximation"},
		{dir: "uncertainty", want: "robust decision", heavy: true},
		{dir: "validate", want: "rho1: analytic", heavy: true},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.dir, func(t *testing.T) {
			if tc.heavy && testing.Short() {
				t.Skip("Monte-Carlo example skipped in -short mode")
			}
			out, err := exec.Command("go", "run", "./examples/"+tc.dir).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", tc.dir, err, out)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Errorf("example %s output missing %q:\n%s", tc.dir, tc.want, out)
			}
		})
	}
}
