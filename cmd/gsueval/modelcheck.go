package main

import (
	"errors"
	"fmt"
	"io"

	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/robust"
)

// modelCheck runs the static model verifier behind the -modelcheck flag:
// it builds every constituent model of the translation chain (RMGd, RMGp,
// and both RMNd instantiations) from the given parameters and verifies
// generator validity, reachability, absorbing/ergodic structure, and
// reward bounds — all before any solve. Each report is printed whether or
// not it passes; a failing report is tagged with exit code 2. With
// metricsMode set, the per-check finding/elision counters of every model
// are routed through robust.Metrics and dumped to stderr, the same
// structure the batch runners expose, so CI dashboards track
// model-verification health alongside solver health.
func modelCheck(p mdcd.Params, w io.Writer, metricsMode string, tr *obs.Tracer) error {
	fmt.Fprintf(w, "modelcheck: static model verification on %+v\n\n", p)
	reports, err := mdcd.CheckModels(p)
	for _, rep := range reports {
		rep.WriteText(w)
		fmt.Fprintln(w)
	}
	if metricsMode != "" {
		m := robust.NewMetrics(0, 0)
		for _, rep := range reports {
			m.AddChecks(rep.Model, rep.Counters())
		}
		if merr := dumpMetrics(metricsMode, m, tr); merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		fmt.Fprintf(w, "modelcheck: FAIL: %v\n", err)
		if !errors.Is(err, robust.ErrInvariant) {
			// Rejected parameters never produced a model to verify; that
			// is still an invariant violation of the toolkit's input
			// contract, the same classification core.SelfCheck uses.
			err = fmt.Errorf("%w: %w", robust.ErrInvariant, err)
		}
		return selfCheckError(fmt.Errorf("modelcheck: %w", err))
	}
	fmt.Fprintln(w, "modelcheck: PASS")
	return nil
}
