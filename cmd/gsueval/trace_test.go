package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardedop/internal/obs"
)

// The acceptance run of the tracing stack: a 50-point paper-scale sweep
// with -trace must produce a valid JSON trace whose manifest records the
// curve engine's exact solver-pass budget (98 = 49 RMGd series gaps +
// 49 RMNd-pair series gaps) and whose span tree covers every solver layer.
func TestSweepTraceManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	// -parametric=off pins the numeric curve engine; the closed-form
	// path's manifest is pinned by TestSweepTraceManifestParametric.
	if _, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "49", "-parallel", "2", "-parametric", "off", "-trace", path})
	}); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}

	m := doc.Manifest
	if m.SchemaVersion != obs.TraceSchemaVersion {
		t.Errorf("schema_version = %d, want %d", m.SchemaVersion, obs.TraceSchemaVersion)
	}
	if m.Tool != "gsueval" {
		t.Errorf("tool = %q, want gsueval", m.Tool)
	}
	if m.GridPoints != 50 {
		t.Errorf("grid_points = %d, want 50", m.GridPoints)
	}
	if m.Workers != 2 {
		t.Errorf("workers = %d, want 2", m.Workers)
	}
	if m.Params["theta"] != 10000 || m.Params["lambda"] != 1200 {
		t.Errorf("params incomplete: %+v", m.Params)
	}
	// The curve engine's budget on the paper grid: two series sweeps over
	// 49 gaps each. A regression to per-point solving (8 passes × 50
	// points) or a pass-attribution leak shows up here exactly.
	if m.SolverPasses != 98 {
		t.Errorf("solver_passes = %d, want exactly 98", m.SolverPasses)
	}
	if m.Counters[obs.CtrSolvePasses] != 98 {
		t.Errorf("counters[%s] = %d, want 98", obs.CtrSolvePasses, m.Counters[obs.CtrSolvePasses])
	}
	for _, model := range []string{"RMGd", "RMNd(mu_new)", "RMNd(mu_old)"} {
		if _, ok := m.Caches[model]; !ok {
			t.Errorf("manifest caches missing %q: %+v", model, m.Caches)
		}
	}

	layers := map[string]bool{}
	for _, s := range doc.Spans {
		layers[s.Layer] = true
	}
	for _, want := range []string{"ctmc", "mdcd", "core", "robust"} {
		if !layers[want] {
			t.Errorf("span tree covers no %s spans (layers: %v)", want, layers)
		}
	}
	if len(doc.Histograms) == 0 {
		t.Error("trace carries no duration histograms")
	}
}

// The closed-form acceptance run: the default -parametric=auto sweep at
// the paper parameters must be served entirely by the parametric layer —
// one hit per grid point, zero fallbacks, zero CTMC solver passes — and
// the run manifest must prove it through the counters.
func TestSweepTraceManifestParametric(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "49", "-trace", path})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	m := doc.Manifest
	if m.Counters[obs.CtrParametricHits] != 50 {
		t.Errorf("counters[%s] = %d, want 50", obs.CtrParametricHits, m.Counters[obs.CtrParametricHits])
	}
	if m.Counters[obs.CtrParametricFallbacks] != 0 {
		t.Errorf("counters[%s] = %d, want 0", obs.CtrParametricFallbacks, m.Counters[obs.CtrParametricFallbacks])
	}
	if m.SolverPasses != 0 {
		t.Errorf("solver_passes = %d, want 0 (closed forms only)", m.SolverPasses)
	}
}

// The fallback acceptance run: out-of-domain parameters under the default
// -parametric=auto must be served numerically with the fallbacks counted
// in the run manifest.
func TestSweepTraceManifestParametricFallback(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if _, err := capture(t, func() error {
		// MuNew far above the validated domain bound but mdcd-valid.
		return run([]string{"-sweep", "-points", "9", "-munew", "0.5", "-trace", path})
	}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	m := doc.Manifest
	if m.Counters[obs.CtrParametricFallbacks] != 10 {
		t.Errorf("counters[%s] = %d, want 10", obs.CtrParametricFallbacks, m.Counters[obs.CtrParametricFallbacks])
	}
	if m.Counters[obs.CtrParametricHits] != 0 {
		t.Errorf("counters[%s] = %d, want 0", obs.CtrParametricHits, m.Counters[obs.CtrParametricHits])
	}
	if m.SolverPasses == 0 {
		t.Error("solver_passes = 0, want numeric passes on the fallback path")
	}
}

// The -metrics json document is a consumer contract: it must carry the
// schema version stamp and only keys the schema pins. A new key means a
// schema bump, not a silent extension.
func TestMetricsJSONSchemaGolden(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-sweep", "-points", "4", "-theta", "2000", "-parametric", "off", "-metrics", "json"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if jerr := json.Unmarshal([]byte(stderr), &doc); jerr != nil {
		t.Fatalf("-metrics json is not valid JSON: %v\n%s", jerr, stderr)
	}
	if v, ok := doc["schema_version"].(float64); !ok || v != 1 {
		t.Errorf("schema_version = %v, want 1", doc["schema_version"])
	}
	pinned := map[string]bool{
		"schema_version": true, "attempts": true, "retries": true,
		"panics": true, "errors": true, "item_nanos": true,
		"wall_nanos": true, "workers": true, "solves": true,
		"checks": true, "counters": true, "stages": true,
	}
	for key := range doc {
		if !pinned[key] {
			t.Errorf("metrics document grew unpinned key %q — bump robust.MetricsSchemaVersion and the golden set together", key)
		}
	}
	for _, key := range []string{"attempts", "item_nanos", "wall_nanos", "workers", "solves"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("metrics document missing required key %q:\n%s", key, stderr)
		}
	}
}

// -metrics prom must expose the run as Prometheus text families: traced
// counters, batch counters, stage aggregates, and span histograms.
func TestMetricsPromSweep(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-sweep", "-points", "4", "-theta", "2000", "-parametric", "off", "-metrics", "prom"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE gsu_ctmc_solve_passes_total counter",
		"gsu_batch_attempts_total",
		`gsu_stage_total{stage="core.curve"} 1`,
		"# TYPE gsu_span_duration_seconds histogram",
		`le="+Inf"`,
	} {
		if !strings.Contains(stderr, want) {
			t.Errorf("prom output missing %q:\n%s", want, stderr)
		}
	}
}
