package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardedop/internal/obs"
)

// The scenario-mode acceptance run: an eight-node two-upgrade scenario
// must solve end-to-end through -scenario, and the -trace manifest must
// record the template instance and generated-state counters.
func TestScenarioSweepTraceManifest(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	out, err := capture(t, func() error {
		return run([]string{
			"-scenario", filepath.Join("..", "..", "examples", "scenarios", "eight-node.json"),
			"-points", "4", "-trace", path,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`scenario "eight-node": 8 nodes, policy per-node`,
		"Gp: mean-field",
		"optimal phi (grid)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario sweep output missing %q:\n%s", want, out)
		}
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
	m := doc.Manifest
	if m.Counters[obs.CtrTemplateInstances] != 1 {
		t.Errorf("counters[%s] = %d, want 1", obs.CtrTemplateInstances, m.Counters[obs.CtrTemplateInstances])
	}
	if m.Counters[obs.CtrTemplateStates] == 0 {
		t.Errorf("counters[%s] = 0, want the generated state count", obs.CtrTemplateStates)
	}
	if m.Params["theta"] != 100 {
		t.Errorf("manifest params not taken from the spec: %+v", m.Params)
	}
	if m.GridPoints != 5 {
		t.Errorf("grid_points = %d, want 5", m.GridPoints)
	}
}

// The canonical three-node example spec must solve with the exact joint
// overhead model and print a per-node rho for every node.
func TestScenarioThreeNodeJointGp(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{
			"-scenario", filepath.Join("..", "..", "examples", "scenarios", "three-node.json"),
			"-points", "4",
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Gp: joint") {
		t.Errorf("three-node scenario did not use the joint Gp model:\n%s", out)
	}
	if !strings.Contains(out, "rho3 =") {
		t.Errorf("missing per-node overhead parameters:\n%s", out)
	}
}

// Scenario errors must be actionable: a missing file and an invalid spec
// both name the problem.
func TestScenarioErrors(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-scenario", filepath.Join(t.TempDir(), "nope.json")})
	}); err == nil || !strings.Contains(err.Error(), "reading spec") {
		t.Errorf("missing spec file error = %v", err)
	}

	bad := filepath.Join(t.TempDir(), "bad.json")
	if werr := os.WriteFile(bad, []byte(`{"name":"x","theta":-1}`), 0o644); werr != nil {
		t.Fatal(werr)
	}
	if _, err := capture(t, func() error {
		return run([]string{"-scenario", bad})
	}); err == nil || !strings.Contains(err.Error(), "theta") {
		t.Errorf("invalid spec error = %v", err)
	}
}
