// Command gsueval reproduces the evaluation artefacts of the
// guarded-operation performability paper: every table and figure of its
// Section 6, plus the simulation cross-validation.
//
// Usage:
//
//	gsueval -list
//	gsueval -experiment fig9
//	gsueval -all [-keep-going] [-timeout 2m]
//	gsueval -sweep -theta 10000 -munew 1e-4 -coverage 0.95 -alpha 6000 -beta 6000
//	gsueval -scenario spec.json -points 20
//	gsueval -selfcheck
//	gsueval -modelcheck
//
// The -sweep mode evaluates Y(φ) on a custom parameter set, printing the
// curve, the optimal duration, and every constituent measure at the
// optimum — the workflow a designer would use to pick φ for their own
// system.
//
// The -scenario mode generalises -sweep beyond the paper's two-node
// system: it loads a declarative scenario spec (JSON; docs/TEMPLATES.md),
// generates and model-checks the N-node constituent models with
// internal/template, and runs the same sweep/optimize workflow on them.
//
// The -selfcheck mode is a health gate: it statically verifies the
// translated models (see -modelcheck), then runs the analyzer invariant
// suite on the given parameters (defaulting to the paper's Table 3
// baseline) plus a short simulator cross-check of the model translation.
//
// The -modelcheck mode runs only the static model verifier
// (internal/modelcheck) over the constituent models RMGd, RMGp and both
// RMNd instantiations built from the given parameters: generator
// validity, reachability, absorbing/ergodic structure, and reward-bound
// checks, all before any solve (docs/STATIC_ANALYSIS.md).
//
// Exit codes: 0 success; 1 usage or runtime error; 2 self-check or
// modelcheck failure; 3 partial success (-all -keep-going with some
// experiments failed).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"guardedop/internal/core"
	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/obs/pprofutil"
	"guardedop/internal/robust"
	"guardedop/internal/template"
	"guardedop/internal/textplot"
)

// Exit codes of the command, kept distinct so CI gates can tell a broken
// toolkit (2) from a broken experiment (3) from a usage error (1).
const (
	exitOK            = 0
	exitFailure       = 1
	exitSelfCheckFail = 2
	exitPartial       = 3
)

// codedError carries a specific process exit code up to main.
type codedError struct {
	code int
	err  error
}

func (e *codedError) Error() string { return e.err.Error() }
func (e *codedError) Unwrap() error { return e.err }

// exitCode maps an error from run to the process exit code.
func exitCode(err error) int {
	if err == nil {
		return exitOK
	}
	var ce *codedError
	if errors.As(err, &ce) {
		return ce.code
	}
	return exitFailure
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsueval:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gsueval", flag.ContinueOnError)
	var (
		list        = fs.Bool("list", false, "list available experiments")
		experiment  = fs.String("experiment", "", "run one experiment by id (see -list)")
		all         = fs.Bool("all", false, "run every experiment")
		outDir      = fs.String("out", "", "with -all: also write each report to <dir>/<id>.txt")
		sweepMode   = fs.Bool("sweep", false, "sweep Y(phi) for a custom parameter set")
		scenarioF   = fs.String("scenario", "", "sweep a templated N-node scenario loaded from this JSON spec file (docs/TEMPLATES.md)")
		selfcheck   = fs.Bool("selfcheck", false, "run the invariant suite and simulator cross-check as a health gate")
		modelcheck  = fs.Bool("modelcheck", false, "statically verify the translated models and exit")
		optimize    = fs.Bool("optimize", false, "with -sweep: also refine the optimal phi continuously (golden-section)")
		csvOut      = fs.Bool("csv", false, "emit CSV data instead of a text report (figure experiments and -sweep)")
		points      = fs.Int("points", 10, "number of sweep intervals covering [0, theta]")
		timeout     = fs.Duration("timeout", 0, "abort the run after this duration (0 = no limit)")
		keepGoing   = fs.Bool("keep-going", false, "skip failed experiments or sweep points and report them at the end")
		parallel    = fs.Int("parallel", 0, "worker-pool size for batch evaluation (0 = all cores, 1 = sequential); results are identical at every setting")
		metricsVal  = fs.String("metrics", "", "dump run metrics to stderr after -all, -sweep or -modelcheck: \"text\", \"json\" or \"prom\"")
		parametricF = fs.String("parametric", "auto", "closed-form parametric fast path for -sweep: \"auto\" (numeric fallback outside the validated domain), \"on\" (fail if unavailable), \"off\" (numeric engine only)")
		traceOut    = fs.String("trace", "", "write a JSON trace and run manifest to this file (spans, counters, cache stats; see docs/OBSERVABILITY.md)")
		pprofSpec   = fs.String("pprof", "", "profiling: \"cpu[=file]\", \"mem[=file]\", or a host:port to serve net/http/pprof")

		theta    = fs.Float64("theta", 10000, "time to next upgrade (hours)")
		lambda   = fs.Float64("lambda", 1200, "message-sending rate (1/h)")
		muNew    = fs.Float64("munew", 1e-4, "fault-manifestation rate of the upgraded version (1/h)")
		muOld    = fs.Float64("muold", 1e-8, "fault-manifestation rate of old versions (1/h)")
		coverage = fs.Float64("coverage", 0.95, "acceptance-test coverage c")
		pExt     = fs.Float64("pext", 0.1, "probability a message is external")
		alpha    = fs.Float64("alpha", 6000, "AT completion rate (1/h)")
		beta     = fs.Float64("beta", 6000, "checkpoint completion rate (1/h)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	switch *metricsVal {
	case "", "text", "json", "prom":
	default:
		return fmt.Errorf("-metrics must be \"text\", \"json\" or \"prom\", got %q", *metricsVal)
	}
	parametric, err := parseParametricMode(*parametricF)
	if err != nil {
		return err
	}
	if *pprofSpec != "" {
		stop, perr := pprofutil.StartPprof(*pprofSpec)
		if perr != nil {
			return perr
		}
		defer func() {
			if cerr := stop(); cerr != nil && err == nil {
				err = fmt.Errorf("pprof: %w", cerr)
			}
		}()
	}

	params := mdcd.Params{
		Theta: *theta, Lambda: *lambda, MuNew: *muNew, MuOld: *muOld,
		Coverage: *coverage, PExt: *pExt, Alpha: *alpha, Beta: *beta,
	}

	// The tracer collects the span tree and counters of whatever mode runs;
	// the manifest is enriched by the mode (grid size, cache stats) and
	// written alongside the spans when the run ends, on success or failure.
	var tracer *obs.Tracer
	man := &obs.Manifest{
		Tool:    "gsueval",
		Params:  paramsMap(params),
		Workers: *parallel,
	}
	if *traceOut != "" || *metricsVal == "prom" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *traceOut != "" {
		defer func() {
			if werr := writeTraceFile(*traceOut, tracer, *man); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	switch {
	case *list:
		rows := [][]string{{"id", "title"}}
		for _, e := range experiments.All() {
			rows = append(rows, []string{e.ID, e.Title})
		}
		fmt.Print(textplot.Table(rows))
		return nil

	case *modelcheck:
		return modelCheck(params, os.Stdout, *metricsVal, tracer)

	case *selfcheck:
		return selfCheck(ctx, params, os.Stdout)

	case *all:
		rep, err := experiments.RunAll(ctx, os.Stdout, experiments.RunOptions{
			KeepGoing: *keepGoing,
			OutDir:    *outDir,
			Divider:   divider,
			Workers:   *parallel,
		})
		if rep != nil && rep.Report != nil {
			if merr := dumpMetrics(*metricsVal, rep.Report.Metrics, tracer); merr != nil && err == nil {
				err = merr
			}
		}
		if err != nil {
			return err
		}
		if rep.Report.Failed() > 0 {
			fmt.Printf("\n%s\n", rep.Summary())
			return &codedError{
				code: exitPartial,
				err:  fmt.Errorf("completed with %d/%d experiments failed", rep.Report.Failed(), rep.Report.Total),
			}
		}
		return nil

	case *experiment != "":
		if *csvOut {
			curves, err := experiments.CurvesByFigure(*experiment)
			if err != nil {
				return fmt.Errorf("%w (-csv supports the figure experiments)", err)
			}
			return experiments.WriteCurvesCSV(os.Stdout, curves)
		}
		e, ok := experiments.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
		}
		return e.Run(os.Stdout)

	case *scenarioF != "":
		return scenarioSweep(ctx, *scenarioF, sweepConfig{
			points:     *points,
			refine:     *optimize,
			csvOut:     *csvOut,
			keepGoing:  *keepGoing,
			workers:    *parallel,
			metrics:    *metricsVal,
			tracer:     tracer,
			manifest:   man,
			parametric: parametric,
		})

	case *sweepMode:
		return sweep(ctx, params, sweepConfig{
			points:     *points,
			refine:     *optimize,
			csvOut:     *csvOut,
			keepGoing:  *keepGoing,
			workers:    *parallel,
			metrics:    *metricsVal,
			tracer:     tracer,
			manifest:   man,
			parametric: parametric,
		})

	default:
		fs.Usage()
		return fmt.Errorf("choose one of -list, -experiment, -all, -sweep, -scenario, -selfcheck, -modelcheck")
	}
}

const divider = "================================================================"

// dumpMetrics writes the collected run metrics to stderr in the requested
// mode ("" = off, "text", "json", "prom"). A non-nil tracer is folded in
// first (counters and stage aggregates), so every mode reports the traced
// observability alongside the batch counters. Stderr keeps -csv and report
// output on stdout machine-parseable.
func dumpMetrics(mode string, m *robust.Metrics, tr *obs.Tracer) error {
	if mode == "" {
		return nil
	}
	if m == nil {
		m = robust.NewMetrics(0, 0)
	}
	m.AddTrace(tr)
	switch mode {
	case "json":
		return m.WriteJSON(os.Stderr)
	case "prom":
		// One shared exposition path (counters, stages, histograms) with
		// the gsuserve /metrics endpoint — see robust.Metrics.WritePromWith.
		return m.WritePromWith(os.Stderr, tr.Histograms())
	default:
		m.WriteText(os.Stderr)
		return nil
	}
}

// paramsMap renders a parameter set as the manifest's flag-keyed map.
func paramsMap(p mdcd.Params) map[string]float64 {
	return map[string]float64{
		"theta": p.Theta, "lambda": p.Lambda, "munew": p.MuNew, "muold": p.MuOld,
		"coverage": p.Coverage, "pext": p.PExt, "alpha": p.Alpha, "beta": p.Beta,
	}
}

// writeTraceFile writes the run's trace document (manifest + span tree +
// histograms) to path as indented JSON.
func writeTraceFile(path string, tr *obs.Tracer, man obs.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	werr := obs.WriteTrace(f, tr, man)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("trace: %w", cerr)
	}
	return werr
}

// parseParametricMode maps the -parametric flag value to the analyzer
// option.
func parseParametricMode(v string) (core.ParametricMode, error) {
	switch v {
	case "auto":
		return core.ParametricAuto, nil
	case "on":
		return core.ParametricOn, nil
	case "off":
		return core.ParametricOff, nil
	default:
		return 0, fmt.Errorf("-parametric must be \"auto\", \"on\" or \"off\", got %q", v)
	}
}

// sweepConfig carries the sweep-mode flag values.
type sweepConfig struct {
	points     int
	refine     bool
	csvOut     bool
	keepGoing  bool
	workers    int
	metrics    string
	tracer     *obs.Tracer
	manifest   *obs.Manifest
	parametric core.ParametricMode
}

func sweep(ctx context.Context, p mdcd.Params, cfg sweepConfig) error {
	a, err := core.NewAnalyzerWithOptions(p, core.Options{Parametric: cfg.parametric})
	if err != nil {
		return err
	}
	return sweepWith(ctx, a, p, cfg)
}

// scenarioSweep is the -scenario mode: generate the templated models,
// verify them, and run the standard sweep workflow on the scenario
// analyzer. The generated state spaces are model-checked inside
// template.Build before anything is solved, and the build emits the
// template.instances / template.states counters onto the trace.
func scenarioSweep(ctx context.Context, path string, cfg sweepConfig) error {
	spec, err := template.Load(path)
	if err != nil {
		return err
	}
	inst, err := template.Build(ctx, spec)
	if err != nil {
		return err
	}
	a, err := core.NewScenarioAnalyzer(core.ScenarioModels{
		Params: inst.Params,
		Gd:     inst.Gd,
		NdNew:  inst.NdNew,
		NdOld:  inst.NdOld,
		Rhos:   inst.Rhos,
	}, core.Options{Parametric: cfg.parametric})
	if err != nil {
		return err
	}
	if cfg.manifest != nil {
		cfg.manifest.Params = paramsMap(inst.Params)
	}
	fmt.Printf("scenario %q: %d nodes, policy %s, %d generated states (Gp: %s)\n",
		spec.Name, len(spec.Nodes), spec.Policy(), inst.TotalStates, gpModeLabel(inst))
	return sweepWith(ctx, a, inst.Params, cfg)
}

// gpModeLabel describes how the overhead measures were solved.
func gpModeLabel(inst *template.Instance) string {
	if inst.GpMeanField {
		return "mean-field"
	}
	return fmt.Sprintf("joint, %d states", inst.GpStates)
}

func sweepWith(ctx context.Context, a *core.Analyzer, p mdcd.Params, cfg sweepConfig) error {
	grid := core.SweepGrid(p.Theta, cfg.points)
	if cfg.manifest != nil {
		// Enrich the run manifest before the sweep so even a failed run's
		// trace records what was attempted; cache stats are read at exit.
		cfg.manifest.GridPoints = len(grid)
		defer func() { cfg.manifest.Caches = a.CacheStats() }()
	}
	pr, err := a.CurvePartialWorkers(ctx, grid, cfg.workers)
	if pr != nil && pr.Report != nil {
		if merr := dumpMetrics(cfg.metrics, pr.Report.Metrics, cfg.tracer); merr != nil && err == nil {
			err = merr
		}
	}
	if err != nil {
		return err
	}
	if !cfg.keepGoing {
		if rerr := pr.Report.Err(); rerr != nil {
			return fmt.Errorf("%v (rerun with -keep-going to sweep the surviving points)", rerr)
		}
	}
	results := pr.Successes()
	phis := make([]float64, 0, len(results))
	for _, i := range pr.SuccessIndices() {
		phis = append(phis, grid[i])
	}

	if cfg.csvOut {
		c := experiments.Curve{Label: "sweep", Params: p, Phis: phis, Results: results}
		return experiments.WriteResultsCSV(os.Stdout, c)
	}
	fmt.Printf("parameters: %+v\n", p)
	fmt.Print("derived overhead parameters:")
	for i, rho := range a.Rhos() {
		fmt.Printf(" rho%d = %.4f", i+1, rho)
	}
	fmt.Print("\n\n")

	rows := [][]string{{"phi", "Y", "E[W_phi]", "Y^S1", "Y^S2", "gamma", "P(S1)"}}
	best := results[0]
	var ys []float64
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.Phi),
			fmt.Sprintf("%.4f", r.Y),
			fmt.Sprintf("%.1f", r.EWPhi),
			fmt.Sprintf("%.1f", r.YS1),
			fmt.Sprintf("%.1f", r.YS2),
			fmt.Sprintf("%.4f", r.Gamma),
			fmt.Sprintf("%.4f", r.PS1),
		})
		ys = append(ys, r.Y)
		if r.Y > best.Y {
			best = r
		}
	}
	fmt.Print(textplot.Table(rows))
	fmt.Println()
	fmt.Print(textplot.Chart("Y vs phi", phis, []textplot.Series{{Name: "Y", Y: ys}}, 66, 14))
	fmt.Println()
	if pr.Report.Failed() > 0 {
		fmt.Printf("note: %d of %d sweep points were skipped:\n%s\n\n",
			pr.Report.Failed(), pr.Report.Total, pr.Report.Summary())
	}
	fmt.Printf("optimal phi (grid) = %.0f with Y = %.4f\n", best.Phi, best.Y)
	if cfg.refine {
		refined, err := a.OptimizePhiContext(ctx, core.OptimizeOptions{Workers: cfg.workers})
		if err != nil {
			return err
		}
		fmt.Printf("optimal phi (continuous) = %.0f with Y = %.4f\n", refined.Phi, refined.Y)
		best = refined
	}
	if best.Y <= 1 {
		fmt.Println("note: max Y <= 1 — guarded operation does not pay off under these parameters.")
	}
	fmt.Println("\nconstituent measures at the optimum:")
	fmt.Print(textplot.Table([][]string{
		{"measure", "value"},
		{"P(X'_phi in A'_1)", fmt.Sprintf("%.6f", best.Gd.PA1)},
		{"int h", fmt.Sprintf("%.6f", best.Gd.IntH)},
		{"int tau*h", fmt.Sprintf("%.2f", best.Gd.IntTauH)},
		{"int int h*f", fmt.Sprintf("%.3e", best.Gd.IntHF)},
		{"P(X''_theta in A''_1)", fmt.Sprintf("%.6f", best.PNoFailNewTheta)},
		{"P(X''_(theta-phi) in A''_1)", fmt.Sprintf("%.6f", best.PNoFailNewRem)},
		{"int_phi^theta f", fmt.Sprintf("%.3e", best.IntF)},
	}))
	return nil
}

// selfCheckError tags a failed health gate with exit code 2 unless the
// failure was a cancellation (which stays a plain runtime error).
func selfCheckError(err error) error {
	if errors.Is(err, robust.ErrCanceled) || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &codedError{code: exitSelfCheckFail, err: err}
}
