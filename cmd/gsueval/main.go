// Command gsueval reproduces the evaluation artefacts of the
// guarded-operation performability paper: every table and figure of its
// Section 6, plus the simulation cross-validation.
//
// Usage:
//
//	gsueval -list
//	gsueval -experiment fig9
//	gsueval -all
//	gsueval -sweep -theta 10000 -munew 1e-4 -coverage 0.95 -alpha 6000 -beta 6000
//
// The -sweep mode evaluates Y(φ) on a custom parameter set, printing the
// curve, the optimal duration, and every constituent measure at the
// optimum — the workflow a designer would use to pick φ for their own
// system.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"guardedop/internal/core"
	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsueval:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("gsueval", flag.ContinueOnError)
	var (
		list       = fs.Bool("list", false, "list available experiments")
		experiment = fs.String("experiment", "", "run one experiment by id (see -list)")
		all        = fs.Bool("all", false, "run every experiment")
		outDir     = fs.String("out", "", "with -all: also write each report to <dir>/<id>.txt")
		sweepMode  = fs.Bool("sweep", false, "sweep Y(phi) for a custom parameter set")
		optimize   = fs.Bool("optimize", false, "with -sweep: also refine the optimal phi continuously (golden-section)")
		csvOut     = fs.Bool("csv", false, "emit CSV data instead of a text report (figure experiments and -sweep)")
		points     = fs.Int("points", 10, "number of sweep intervals covering [0, theta]")

		theta    = fs.Float64("theta", 10000, "time to next upgrade (hours)")
		lambda   = fs.Float64("lambda", 1200, "message-sending rate (1/h)")
		muNew    = fs.Float64("munew", 1e-4, "fault-manifestation rate of the upgraded version (1/h)")
		muOld    = fs.Float64("muold", 1e-8, "fault-manifestation rate of old versions (1/h)")
		coverage = fs.Float64("coverage", 0.95, "acceptance-test coverage c")
		pExt     = fs.Float64("pext", 0.1, "probability a message is external")
		alpha    = fs.Float64("alpha", 6000, "AT completion rate (1/h)")
		beta     = fs.Float64("beta", 6000, "checkpoint completion rate (1/h)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch {
	case *list:
		rows := [][]string{{"id", "title"}}
		for _, e := range experiments.All() {
			rows = append(rows, []string{e.ID, e.Title})
		}
		fmt.Print(textplot.Table(rows))
		return nil

	case *all:
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
		}
		for i, e := range experiments.All() {
			if i > 0 {
				fmt.Printf("\n%s\n\n", divider)
			}
			var w io.Writer = os.Stdout
			var file *os.File
			if *outDir != "" {
				var err error
				file, err = os.Create(filepath.Join(*outDir, e.ID+".txt"))
				if err != nil {
					return err
				}
				w = io.MultiWriter(os.Stdout, file)
			}
			err := e.Run(w)
			if file != nil {
				if cerr := file.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
		}
		return nil

	case *experiment != "":
		if *csvOut {
			curves, err := experiments.CurvesByFigure(*experiment)
			if err != nil {
				return fmt.Errorf("%w (-csv supports the figure experiments)", err)
			}
			return experiments.WriteCurvesCSV(os.Stdout, curves)
		}
		e, ok := experiments.ByID(*experiment)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", *experiment)
		}
		return e.Run(os.Stdout)

	case *sweepMode:
		p := mdcd.Params{
			Theta: *theta, Lambda: *lambda, MuNew: *muNew, MuOld: *muOld,
			Coverage: *coverage, PExt: *pExt, Alpha: *alpha, Beta: *beta,
		}
		return sweep(p, *points, *optimize, *csvOut)

	default:
		fs.Usage()
		return fmt.Errorf("choose one of -list, -experiment, -all, -sweep")
	}
}

const divider = "================================================================"

func sweep(p mdcd.Params, points int, refine, csvOut bool) error {
	a, err := core.NewAnalyzer(p)
	if err != nil {
		return err
	}
	if csvOut {
		phis := core.SweepGrid(p.Theta, points)
		results, err := a.Curve(phis)
		if err != nil {
			return err
		}
		c := experiments.Curve{Label: "sweep", Params: p, Phis: phis, Results: results}
		return experiments.WriteResultsCSV(os.Stdout, c)
	}
	rho1, rho2 := a.Rho()
	fmt.Printf("parameters: %+v\n", p)
	fmt.Printf("derived overhead parameters: rho1 = %.4f, rho2 = %.4f\n\n", rho1, rho2)

	phis := core.SweepGrid(p.Theta, points)
	results, err := a.Curve(phis)
	if err != nil {
		return err
	}
	rows := [][]string{{"phi", "Y", "E[W_phi]", "Y^S1", "Y^S2", "gamma", "P(S1)"}}
	best := results[0]
	var ys []float64
	for _, r := range results {
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", r.Phi),
			fmt.Sprintf("%.4f", r.Y),
			fmt.Sprintf("%.1f", r.EWPhi),
			fmt.Sprintf("%.1f", r.YS1),
			fmt.Sprintf("%.1f", r.YS2),
			fmt.Sprintf("%.4f", r.Gamma),
			fmt.Sprintf("%.4f", r.PS1),
		})
		ys = append(ys, r.Y)
		if r.Y > best.Y {
			best = r
		}
	}
	fmt.Print(textplot.Table(rows))
	fmt.Println()
	fmt.Print(textplot.Chart("Y vs phi", phis, []textplot.Series{{Name: "Y", Y: ys}}, 66, 14))
	fmt.Println()
	fmt.Printf("optimal phi (grid) = %.0f with Y = %.4f\n", best.Phi, best.Y)
	if refine {
		refined, err := a.OptimizePhi(core.OptimizeOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("optimal phi (continuous) = %.0f with Y = %.4f\n", refined.Phi, refined.Y)
		best = refined
	}
	if best.Y <= 1 {
		fmt.Println("note: max Y <= 1 — guarded operation does not pay off under these parameters.")
	}
	fmt.Println("\nconstituent measures at the optimum:")
	fmt.Print(textplot.Table([][]string{
		{"measure", "value"},
		{"P(X'_phi in A'_1)", fmt.Sprintf("%.6f", best.Gd.PA1)},
		{"int h", fmt.Sprintf("%.6f", best.Gd.IntH)},
		{"int tau*h", fmt.Sprintf("%.2f", best.Gd.IntTauH)},
		{"int int h*f", fmt.Sprintf("%.3e", best.Gd.IntHF)},
		{"P(X''_theta in A''_1)", fmt.Sprintf("%.6f", best.PNoFailNewTheta)},
		{"P(X''_(theta-phi) in A''_1)", fmt.Sprintf("%.6f", best.PNoFailNewRem)},
		{"int_phi^theta f", fmt.Sprintf("%.3e", best.IntF)},
	}))
	return nil
}
