package main

import (
	"context"
	"fmt"
	"io"
	"math"

	"guardedop/internal/core"
	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/sim"
)

// selfCheckSimConfig is the reduced cross-check configuration: the scaled
// valsim parameter set with fewer paths and phi points — enough to catch a
// broken model translation without making -selfcheck slow. It is fixed
// (independent of the user's -theta etc.) because it checks the toolkit,
// not the user's parameter set; the invariant suite covers the latter.
func selfCheckSimConfig() experiments.ValsimConfig {
	cfg := experiments.DefaultValsimConfig()
	cfg.Phis = []float64{0, 400, 800}
	cfg.Paths = 4000
	return cfg
}

// selfCheck runs the health gate behind the -selfcheck flag: the static
// model verifier (the -modelcheck gate, before any solve), then the
// analyzer invariant suite on the given parameters, then a short
// simulator cross-check of the successive model translation. Failures
// come back tagged with exit code 2; cancellation stays a plain runtime
// error.
func selfCheck(ctx context.Context, p mdcd.Params, w io.Writer) error {
	if err := modelCheck(p, w, "", nil); err != nil {
		return err
	}

	fmt.Fprintf(w, "\nself-check: invariant suite on %+v\n\n", p)
	rep, err := core.SelfCheck(ctx, p, 10)
	if rep != nil {
		fmt.Fprint(w, rep)
	}
	if err != nil {
		return selfCheckError(err)
	}

	fmt.Fprintln(w, "\nself-check: simulator cross-check (fixed scaled configuration)")
	if err := simCrossCheck(ctx, w); err != nil {
		return selfCheckError(err)
	}
	fmt.Fprintln(w, "\nself-check: PASS")
	return nil
}

// simCrossCheck compares the analytic index against a short fixed-gamma
// Monte-Carlo estimate on the scaled configuration. A point deviating by
// more than 4 standard errors + 2% of the analytic value fails the check
// (the same verdict rule as the full valsim experiment).
func simCrossCheck(ctx context.Context, w io.Writer) error {
	cfg := selfCheckSimConfig()
	analyzer, err := core.NewAnalyzer(cfg.Params)
	if err != nil {
		return fmt.Errorf("simulator cross-check: %w", err)
	}
	rho1, rho2 := analyzer.Rho()
	s, err := sim.NewSimulator(cfg.Params, rho1, rho2)
	if err != nil {
		return fmt.Errorf("simulator cross-check: %w", err)
	}
	for _, phi := range cfg.Phis {
		if err := ctx.Err(); err != nil {
			return err
		}
		ana, err := analyzer.Evaluate(phi)
		if err != nil {
			return fmt.Errorf("simulator cross-check: phi=%g: %w", phi, err)
		}
		est, err := s.EstimateY(phi, sim.Options{
			Paths: cfg.Paths, Seed: cfg.Seed, GammaMode: sim.GammaFixed, Gamma: ana.Gamma,
		})
		if err != nil {
			return fmt.Errorf("simulator cross-check: phi=%g: %w", phi, err)
		}
		dev := math.Abs(est.Y - ana.Y)
		tol := 4*est.YStdErr + 0.02*ana.Y
		if dev > tol {
			fmt.Fprintf(w, "FAIL  phi=%-6.0f analytic=%.4f sim=%.4f (stderr %.4f, %d paths)\n",
				phi, ana.Y, est.Y, est.YStdErr, cfg.Paths)
			return fmt.Errorf("simulator cross-check: phi=%g: |sim %.4f - analytic %.4f| = %.4f exceeds tolerance %.4f",
				phi, est.Y, ana.Y, dev, tol)
		}
		fmt.Fprintf(w, "PASS  phi=%-6.0f analytic=%.4f sim=%.4f (stderr %.4f, %d paths)\n",
			phi, ana.Y, est.Y, est.YStdErr, cfg.Paths)
	}
	return nil
}
