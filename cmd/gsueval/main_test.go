package main

import (
	"os"
	"strings"
	"testing"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig9", "fig12", "table2", "valsim", "sensitivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-experiment", "table3"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10000") || !strings.Contains(out, "1200") {
		t.Errorf("table3 output incomplete:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-experiment", "nope"}) }); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSweep(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "4", "-theta", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal phi (grid)") {
		t.Errorf("sweep output missing optimum:\n%s", out)
	}
}

func TestRunSweepCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-csv", "-points", "2", "-theta", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV rows = %d, want header + 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "phi,Y,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestRunFigureCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "fig12", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "phi,") {
		t.Errorf("figure CSV output = %q...", out[:40])
	}
}

func TestRunCSVRejectsNonFigure(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-csv"})
	}); err == nil {
		t.Error("-csv with table experiment accepted")
	}
}

func TestRunNoModeErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run(nil) }); err == nil {
		t.Error("no mode accepted")
	}
}

func TestRunSweepInvalidParams(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-sweep", "-lambda", "-3"})
	}); err == nil {
		t.Error("invalid lambda accepted")
	}
}

func TestRunAllWithOutDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment incl. Monte-Carlo; skipped in -short mode")
	}
	dir := t.TempDir()
	if _, err := capture(t, func() error { return run([]string{"-all", "-out", dir}) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig9.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "optimal phi") {
		t.Errorf("fig9 report file incomplete:\n%s", data)
	}
}
