package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"guardedop/internal/robust"
)

// capture redirects stdout around fn and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunList(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-list"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"fig9", "fig12", "table2", "valsim", "sensitivity"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-experiment", "table3"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "10000") || !strings.Contains(out, "1200") {
		t.Errorf("table3 output incomplete:\n%s", out)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-experiment", "nope"}) }); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunSweep(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "4", "-theta", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal phi (grid)") {
		t.Errorf("sweep output missing optimum:\n%s", out)
	}
}

func TestRunSweepCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-csv", "-points", "2", "-theta", "2000"})
	})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV rows = %d, want header + 3:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "phi,Y,") {
		t.Errorf("CSV header = %q", lines[0])
	}
}

func TestRunFigureCSV(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-experiment", "fig12", "-csv"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "phi,") {
		t.Errorf("figure CSV output = %q...", out[:40])
	}
}

func TestRunCSVRejectsNonFigure(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-experiment", "table1", "-csv"})
	}); err == nil {
		t.Error("-csv with table experiment accepted")
	}
}

func TestRunNoModeErrors(t *testing.T) {
	if _, err := capture(t, func() error { return run(nil) }); err == nil {
		t.Error("no mode accepted")
	}
}

func TestRunSweepInvalidParams(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-sweep", "-lambda", "-3"})
	}); err == nil {
		t.Error("invalid lambda accepted")
	}
}

func TestExitCodeClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"plain", errors.New("boom"), exitFailure},
		{"selfcheck", &codedError{code: exitSelfCheckFail, err: errors.New("invariant")}, exitSelfCheckFail},
		{"partial", &codedError{code: exitPartial, err: errors.New("3 failed")}, exitPartial},
		{"wrapped", fmt.Errorf("outer: %w", &codedError{code: exitPartial, err: errors.New("inner")}), exitPartial},
	}
	for _, c := range cases {
		if got := exitCode(c.err); got != c.want {
			t.Errorf("%s: exitCode = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestModelCheckBaselinePassesCLI(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-modelcheck"}) })
	if err != nil {
		t.Fatalf("modelcheck on defaults failed: %v\n%s", err, out)
	}
	for _, want := range []string{"RMGd", "RMGp", "RMNd(mu_new)", "RMNd(mu_old)", "modelcheck: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("modelcheck output missing %q:\n%s", want, out)
		}
	}
}

func TestModelCheckInvalidParamsFails(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-modelcheck", "-coverage", "2"})
	}); err == nil {
		t.Error("modelcheck accepted coverage > 1")
	}
}

func TestSelfCheckRunsModelCheckFirst(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator cross-check; skipped in -short mode")
	}
	out, err := capture(t, func() error { return run([]string{"-selfcheck"}) })
	if err != nil {
		t.Fatal(err)
	}
	mc := strings.Index(out, "modelcheck: static model verification")
	inv := strings.Index(out, "invariant suite")
	if mc < 0 || inv < 0 || mc > inv {
		t.Errorf("modelcheck gate not run before the invariant suite (modelcheck at %d, suite at %d)", mc, inv)
	}
}

func TestSelfCheckBaselinePassesCLI(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the simulator cross-check; skipped in -short mode")
	}
	out, err := capture(t, func() error { return run([]string{"-selfcheck"}) })
	if err != nil {
		t.Fatalf("selfcheck on defaults failed: %v\n%s", err, out)
	}
	for _, want := range []string{"invariant suite", "Y(0) identity", "simulator cross-check", "self-check: PASS"} {
		if !strings.Contains(out, want) {
			t.Errorf("selfcheck output missing %q:\n%s", want, out)
		}
	}
}

func TestSelfCheckDegenerateParamsExitTwo(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-selfcheck", "-lambda", "0"}) })
	if err == nil {
		t.Fatal("selfcheck accepted a degenerate parameter set")
	}
	if got := exitCode(err); got != exitSelfCheckFail {
		t.Errorf("exit code = %d, want %d (err: %v)", got, exitSelfCheckFail, err)
	}
	if !errors.Is(err, robust.ErrInvariant) {
		t.Errorf("failure not classified as invariant violation: %v", err)
	}
	if !strings.Contains(out, "FAIL") {
		t.Errorf("report does not mark the failed check:\n%s", out)
	}
}

func TestTimeoutCancelsSweep(t *testing.T) {
	_, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "6", "-timeout", "1ns"})
	})
	if !errors.Is(err, robust.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if got := exitCode(err); got != exitFailure {
		t.Errorf("timeout exit code = %d, want %d", got, exitFailure)
	}
}

func TestSweepKeepGoingSkipsBadPoints(t *testing.T) {
	// MuNew this large makes high-phi points hit the E[W_phi] <= E[W_I]
	// guard region on some grids; with a clean parameter set keep-going
	// must behave exactly like the strict mode.
	out, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "4", "-theta", "2000", "-keep-going"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "optimal phi (grid)") {
		t.Errorf("keep-going sweep lost the optimum:\n%s", out)
	}
}

// captureStderr redirects stderr around fn — the metrics dump goes there
// so it never mixes with report output or CSV on stdout.
func captureStderr(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stderr
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stderr = w
	defer func() { os.Stderr = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunRejectsBogusMetricsMode(t *testing.T) {
	if _, err := capture(t, func() error {
		return run([]string{"-sweep", "-points", "2", "-theta", "2000", "-metrics", "bogus"})
	}); err == nil || !strings.Contains(err.Error(), "metrics") {
		t.Errorf("err = %v, want a -metrics validation error", err)
	}
}

func TestRunSweepParallelMatchesSequential(t *testing.T) {
	argv := func(workers string) []string {
		return []string{"-sweep", "-points", "4", "-theta", "2000", "-parallel", workers}
	}
	seq, err := capture(t, func() error { return run(argv("1")) })
	if err != nil {
		t.Fatal(err)
	}
	par, err := capture(t, func() error { return run(argv("4")) })
	if err != nil {
		t.Fatal(err)
	}
	if seq != par {
		t.Errorf("-parallel 4 sweep output differs from sequential:\n--- seq ---\n%s--- par ---\n%s", seq, par)
	}
}

func TestModelCheckMetricsJSON(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-modelcheck", "-metrics", "json"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	var m robust.Metrics
	if jerr := json.Unmarshal([]byte(stderr), &m); jerr != nil {
		t.Fatalf("-metrics json did not emit parseable JSON on stderr: %v\n%s", jerr, stderr)
	}
	// The baseline model set is clean, so every per-check counter exists
	// with zero findings; the RMGd generator-row check must be among them.
	if len(m.Checks) == 0 {
		t.Fatalf("metrics carry no model-check counters:\n%s", stderr)
	}
	for key, c := range m.Checks {
		if c.Findings != 0 || c.Elided != 0 {
			t.Errorf("baseline model check %s reports findings: %+v", key, c)
		}
	}
}

func TestModelCheckMetricsText(t *testing.T) {
	stderr, err := captureStderr(t, func() error {
		_, runErr := capture(t, func() error {
			return run([]string{"-modelcheck", "-metrics", "text"})
		})
		return runErr
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(stderr, "model checks:") {
		t.Errorf("text metrics missing model-check section:\n%s", stderr)
	}
}

func TestRunAllWithOutDir(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment incl. Monte-Carlo; skipped in -short mode")
	}
	dir := t.TempDir()
	if _, err := capture(t, func() error { return run([]string{"-all", "-out", dir}) }); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig9.txt")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "optimal phi") {
		t.Errorf("fig9 report file incomplete:\n%s", data)
	}
}
