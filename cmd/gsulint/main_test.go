package main

import (
	"strings"
	"testing"
)

func TestListRules(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != exitClean {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitClean, errOut.String())
	}
	for _, rule := range []string{
		"errcheck", "floateq", "libpanic", "ctxflow", "probrange",
		"ctxcancel", "lockbalance", "golifetime", "exhaustive",
	} {
		if !strings.Contains(out.String(), rule) {
			t.Errorf("-list output missing rule %s:\n%s", rule, out.String())
		}
	}
}

func TestFindingsExitCode(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint/testdata/src/floateqfix"}, &out, &errOut)
	if code != exitFindings {
		t.Fatalf("exit %d, want %d (stderr: %s)", code, exitFindings, errOut.String())
	}
	if !strings.Contains(out.String(), "floateq") {
		t.Errorf("expected floateq findings, got:\n%s", out.String())
	}
}

func TestCleanPackageExitCode(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"../../internal/lint"}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("exit %d, want %d\nstdout: %s\nstderr: %s", code, exitClean, out.String(), errOut.String())
	}
}

func TestRuleSelection(t *testing.T) {
	var out, errOut strings.Builder
	// Only the errcheck rule: the floateq fixture must come back clean.
	code := run([]string{"-rules", "errcheck", "../../internal/lint/testdata/src/floateqfix"}, &out, &errOut)
	if code != exitClean {
		t.Fatalf("exit %d, want %d (stdout: %s)", code, exitClean, out.String())
	}
	if code := run([]string{"-rules", "nosuch"}, &out, &errOut); code != exitError {
		t.Fatalf("unknown rule: exit %d, want %d", code, exitError)
	}
}
