// Command gsulint runs the repository's domain-specific static analyzer
// over Go packages. It is built on the standard library only; packages are
// loaded the way `go vet` loads them (export data via the go tool).
//
// Usage:
//
//	gsulint [-rules errcheck,floateq,...] [-list] [packages]
//
// With no package arguments it lints ./.... Diagnostics are printed one
// per line as file:line:col: rule: message.
//
// Exit codes: 0 no findings; 1 findings reported; 2 load or usage error.
//
// Suppress a finding with a comment on (or directly above) the line:
//
//	//lint:ignore <rule> <reason>
//
// See docs/STATIC_ANALYSIS.md for the rule catalog.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"guardedop/internal/lint"
)

// Exit codes, kept distinct so CI can tell findings from a broken run.
const (
	exitClean    = 0
	exitFindings = 1
	exitError    = 2
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("gsulint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules = fs.String("rules", "all", "comma-separated rule selection")
		list  = fs.Bool("list", false, "list the available rules and exit")
	)
	if err := fs.Parse(args); err != nil {
		return exitError
	}

	passes, err := lint.SelectPasses(*rules)
	if err != nil {
		fmt.Fprintln(stderr, "gsulint:", err)
		return exitError
	}
	if *list {
		for _, p := range passes {
			fmt.Fprintf(stdout, "%-10s %s\n", p.Name(), p.Doc())
		}
		return exitClean
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "gsulint:", err)
		return exitError
	}
	units, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "gsulint:", err)
		return exitError
	}

	diags := lint.Run(units, passes)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "gsulint: %d finding(s) in %d package(s)\n", len(diags), len(units))
		return exitFindings
	}
	return exitClean
}
