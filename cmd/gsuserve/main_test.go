package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestServeAndDrain boots the daemon on a free port, serves real
// queries, then cancels the lifetime context (the SIGTERM path) and
// asserts a clean exit with the listener closed.
func TestServeAndDrain(t *testing.T) {
	addrCh := make(chan string, 1)
	orig := announce
	announce = func(addr string) { addrCh <- addr }
	defer func() { announce = orig }()

	ctx, cancel := context.WithCancel(context.Background())
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-drain-timeout", "30s"})
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}

	client := &http.Client{Timeout: time.Minute}
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
	}
	resp, err := client.Post(base+"/v1/curve", "application/json", strings.NewReader(`{"points":4}`))
	if err != nil {
		t.Fatalf("curve query: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"points_returned":5`) {
		t.Fatalf("curve query = %d %s", resp.StatusCode, body)
	}

	cancel() // SIGTERM equivalent
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited %d, want 0", code)
		}
	case <-time.After(time.Minute):
		t.Fatal("daemon never drained")
	}
	if _, err := client.Get(base + "/healthz"); err == nil {
		t.Error("drained daemon still accepting connections")
	}
}

// TestLoadgenMode boots a daemon and replays a small generated script
// against it through the -loadgen mode, asserting the clean-run exit.
func TestLoadgenMode(t *testing.T) {
	addrCh := make(chan string, 1)
	orig := announce
	announce = func(addr string) { addrCh <- addr }
	defer func() { announce = orig }()

	sctx, scancel := context.WithCancel(context.Background())
	exit := make(chan int, 1)
	go func() {
		exit <- run(sctx, []string{"-addr", "127.0.0.1:0", "-workers", "1", "-queue", "64"})
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never announced its address")
	}

	lctx, lcancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer lcancel()
	if code := run(lctx, []string{"-loadgen", "-target", base, "-n", "40", "-distinct", "2", "-seed", "9", "-concurrency", "8"}); code != 0 {
		t.Fatalf("loadgen run exited %d, want 0", code)
	}

	scancel()
	if code := <-exit; code != 0 {
		t.Fatalf("daemon exited %d, want 0", code)
	}
}

// TestLoadgenNeedsTarget pins the usage error path.
func TestLoadgenNeedsTarget(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if code := run(ctx, []string{"-loadgen"}); code != 1 {
		t.Fatalf("loadgen without target exited %d, want 1", code)
	}
}
