// Command gsuserve is the performability-as-a-service daemon: it answers
// Y(φ) curve, optimal-duration, and uncertainty-propagation queries over
// HTTP, built for sustained load — identical concurrent queries coalesce
// onto one solver run, answers are cached process-wide with size and TTL
// bounds, saturation sheds new work with 429 + Retry-After instead of
// piling it up, and SIGTERM drains every in-flight request before exit
// (docs/SERVING.md).
//
// Usage:
//
//	gsuserve [-addr 127.0.0.1:8080] [-route-timeout 30s] [-workers 2]
//	         [-max-concurrent 4] [-queue 8] [-retry-after 1s]
//	         [-cache-capacity 512] [-cache-ttl 5m] [-cache-shards 8]
//	         [-drain-timeout 30s] [-pprof host:port]
//	gsuserve -loadgen -target http://host:port [-n 200] [-distinct 4]
//	         [-seed 1] [-concurrency 8]
//
// Routes: POST/GET /v1/curve, /v1/optimize, /v1/propagate (JSON);
// /healthz, /readyz, /metrics (Prometheus text).
//
// The -loadgen mode replays a deterministic generated load script
// against a running daemon and prints the aggregate; it exits nonzero if
// any request failed at the transport level or returned a 5xx, which is
// what the CI smoke gate keys on.
//
// Exit codes: 0 clean serve/load run; 1 usage, listen, or load failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"guardedop/internal/obs"
	"guardedop/internal/obs/pprofutil"
	"guardedop/internal/serve"
)

// announce reports the bound listen address; a package variable so tests
// can capture the dynamically chosen port of -addr host:0.
var announce = func(addr string) {
	log.Printf("gsuserve: listening on %s", addr)
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:]))
}

// run is the testable main: ctx plays the role of the process lifetime
// (main hands it the signal-bound context's parent; tests cancel it to
// simulate SIGTERM).
func run(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gsuserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		routeTimeout = fs.Duration("route-timeout", 30*time.Second, "per-request solve budget; timeout_ms can tighten it")
		workers      = fs.Int("workers", 2, "solver workers per request")
		maxConc      = fs.Int("max-concurrent", 4, "solves running at once before new work queues")
		queue        = fs.Int("queue", 8, "admitted requests that may wait for a slot; beyond this, shed")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		cacheCap     = fs.Int("cache-capacity", 512, "response cache entries")
		cacheTTL     = fs.Duration("cache-ttl", 5*time.Minute, "response cache entry lifetime")
		cacheShards  = fs.Int("cache-shards", 8, "cache lock shards")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work")
		parametric   = fs.String("parametric", "auto", "closed-form parametric fast path: \"auto\" (numeric fallback outside the validated domain), \"on\" (fail analyzer builds outside it), \"off\" (numeric engine only)")
		pprofSpec    = fs.String("pprof", "", "profiling: cpu[=file], mem[=file], or host:port for net/http/pprof")

		loadgen  = fs.Bool("loadgen", false, "replay a generated load script against -target instead of serving")
		target   = fs.String("target", "", "base URL of the daemon to load (loadgen mode)")
		n        = fs.Int("n", 200, "requests to issue (loadgen mode)")
		distinct = fs.Int("distinct", 4, "distinct parameter sets in the script (loadgen mode)")
		seed     = fs.Int64("seed", 1, "load script seed (loadgen mode)")
		conc     = fs.Int("concurrency", 8, "parallel load clients (loadgen mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	switch *parametric {
	case "auto", "on", "off":
	default:
		log.Printf("gsuserve: -parametric must be \"auto\", \"on\" or \"off\", got %q", *parametric)
		return 1
	}

	if *pprofSpec != "" {
		stop, err := pprofutil.StartPprof(*pprofSpec)
		if err != nil {
			log.Printf("gsuserve: %v", err)
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				log.Printf("gsuserve: %v", err)
			}
		}()
	}

	if *loadgen {
		return runLoadgen(ctx, *target, *seed, *n, *distinct, *conc)
	}

	tracer := obs.NewTracer()
	s := serve.New(serve.Config{
		RouteTimeout: *routeTimeout,
		Workers:      *workers,
		Limiter: serve.LimiterConfig{
			MaxConcurrent: *maxConc,
			MaxQueue:      *queue,
			RetryAfter:    *retryAfter,
		},
		ResponseCache: serve.CacheConfig{Shards: *cacheShards, Capacity: *cacheCap, TTL: *cacheTTL},
		AnalyzerCache: serve.CacheConfig{Shards: *cacheShards},
		Parametric:    *parametric,
		Tracer:        tracer,
	})
	bound, err := s.Start(*addr)
	if err != nil {
		log.Printf("gsuserve: %v", err)
		return 1
	}
	announce(bound)

	// Serve until the process is told to stop (SIGTERM/SIGINT or the
	// parent context), then drain: stop accepting, finish in-flight work.
	sigCtx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-sigCtx.Done()
	log.Printf("gsuserve: draining (up to %v)", *drainTimeout)
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		log.Printf("gsuserve: drain: %v", err)
		return 1
	}
	ctrs := tracer.Counters()
	log.Printf("gsuserve: drained cleanly (%d requests, %d coalesced, %d shed, %d degraded)",
		ctrs[obs.CtrServeRequests], ctrs[obs.CtrServeCoalesced], ctrs[obs.CtrServeShed], ctrs[obs.CtrServeDegraded])
	return 0
}

// runLoadgen replays a deterministic script against target and prints
// the aggregate report; nonzero exit on transport errors or any 5xx.
func runLoadgen(ctx context.Context, target string, seed int64, n, distinct, conc int) int {
	if target == "" {
		log.Printf("gsuserve: -loadgen needs -target")
		return 1
	}
	spec := serve.GenerateLoad(seed, n, distinct)
	if conc > 0 {
		spec.Concurrency = conc
	}
	report, err := serve.RunLoad(ctx, nil, target, spec)
	if err != nil {
		log.Printf("gsuserve: loadgen: %v", err)
		return 1
	}
	fmt.Println(report)
	if report.Transport > 0 || report.Errors5xx > 0 {
		log.Printf("gsuserve: loadgen: %d transport errors, %d 5xx responses", report.Transport, report.Errors5xx)
		return 1
	}
	return 0
}
