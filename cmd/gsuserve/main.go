// Command gsuserve is the performability-as-a-service daemon: it answers
// Y(φ) curve, optimal-duration, and uncertainty-propagation queries over
// HTTP, built for sustained load — identical concurrent queries coalesce
// onto one solver run, answers are cached process-wide with size and TTL
// bounds, saturation sheds new work with 429 + Retry-After instead of
// piling it up, and SIGTERM drains every in-flight request before exit
// (docs/SERVING.md).
//
// Usage:
//
//	gsuserve [-addr 127.0.0.1:8080] [-route-timeout 30s] [-workers 2]
//	         [-max-concurrent 4] [-queue 8] [-retry-after 1s]
//	         [-cache-capacity 512] [-cache-ttl 5m] [-cache-shards 8]
//	         [-drain-timeout 30s] [-log json|text|off]
//	         [-trace-sample 0.01] [-trace-ring 64] [-pprof host:port]
//	gsuserve -loadgen -target http://host:port [-n 200] [-distinct 4]
//	         [-seed 1] [-concurrency 8]
//
// Routes: POST/GET /v1/curve, /v1/optimize, /v1/propagate (JSON);
// /healthz, /readyz, /metrics (Prometheus text); GET /debug/traces
// (sampled request traces, docs/OBSERVABILITY.md).
//
// All daemon output is structured logging (stdlib log/slog) on stderr:
// one access record per request carrying trace_id/route/status plus
// lifecycle events, machine-parseable as JSON by default. -log text is
// for humans at a terminal; -log off silences everything.
//
// The -loadgen mode replays a deterministic generated load script
// against a running daemon and prints the aggregate; it exits nonzero if
// any request failed at the transport level or returned a 5xx, which is
// what the CI smoke gate keys on.
//
// Exit codes: 0 clean serve/load run; 1 usage, listen, or load failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"guardedop/internal/obs"
	"guardedop/internal/obs/pprofutil"
	"guardedop/internal/serve"
)

// logger is the daemon's structured logger; run() reconfigures it from
// the -log flag before any lifecycle event is emitted.
var logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))

// announce reports the bound listen address; a package variable so tests
// can capture the dynamically chosen port of -addr host:0.
var announce = func(addr string) {
	logger.Info("listening", "addr", addr)
}

func main() {
	os.Exit(run(context.Background(), os.Args[1:]))
}

// newLogger builds the daemon logger for one -log mode; the boolean is
// false for an unknown mode.
func newLogger(mode string) (*slog.Logger, bool) {
	switch mode {
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, nil)), true
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, nil)), true
	case "off":
		return slog.New(slog.NewTextHandler(io.Discard, nil)), true
	default:
		return nil, false
	}
}

// run is the testable main: ctx plays the role of the process lifetime
// (main hands it the signal-bound context's parent; tests cancel it to
// simulate SIGTERM).
func run(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gsuserve", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free one)")
		routeTimeout = fs.Duration("route-timeout", 30*time.Second, "per-request solve budget; timeout_ms can tighten it")
		workers      = fs.Int("workers", 2, "solver workers per request")
		maxConc      = fs.Int("max-concurrent", 4, "solves running at once before new work queues")
		queue        = fs.Int("queue", 8, "admitted requests that may wait for a slot; beyond this, shed")
		retryAfter   = fs.Duration("retry-after", time.Second, "Retry-After hint on shed responses")
		cacheCap     = fs.Int("cache-capacity", 512, "response cache entries")
		cacheTTL     = fs.Duration("cache-ttl", 5*time.Minute, "response cache entry lifetime")
		cacheShards  = fs.Int("cache-shards", 8, "cache lock shards")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight work")
		parametric   = fs.String("parametric", "auto", "closed-form parametric fast path: \"auto\" (numeric fallback outside the validated domain), \"on\" (fail analyzer builds outside it), \"off\" (numeric engine only)")
		logMode      = fs.String("log", "json", "structured log format on stderr: \"json\", \"text\", or \"off\"")
		traceSample  = fs.Float64("trace-sample", 0.01, "fraction of requests whose trace document is retained for /debug/traces (inbound X-Trace-Id and 5xx are always kept)")
		traceRing    = fs.Int("trace-ring", 64, "sampled trace documents kept in memory for /debug/traces")
		pprofSpec    = fs.String("pprof", "", "profiling: cpu[=file], mem[=file], or host:port for net/http/pprof")

		loadgen  = fs.Bool("loadgen", false, "replay a generated load script against -target instead of serving")
		target   = fs.String("target", "", "base URL of the daemon to load (loadgen mode)")
		n        = fs.Int("n", 200, "requests to issue (loadgen mode)")
		distinct = fs.Int("distinct", 4, "distinct parameter sets in the script (loadgen mode)")
		seed     = fs.Int64("seed", 1, "load script seed (loadgen mode)")
		conc     = fs.Int("concurrency", 8, "parallel load clients (loadgen mode)")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}
	l, ok := newLogger(*logMode)
	if !ok {
		logger.Error("invalid flag", "flag", "log", "got", *logMode, "want", "json|text|off")
		return 1
	}
	logger = l
	switch *parametric {
	case "auto", "on", "off":
	default:
		logger.Error("invalid flag", "flag", "parametric", "got", *parametric, "want", "auto|on|off")
		return 1
	}

	if *pprofSpec != "" {
		stop, err := pprofutil.StartPprof(*pprofSpec)
		if err != nil {
			logger.Error("pprof start failed", "err", err.Error())
			return 1
		}
		defer func() {
			if err := stop(); err != nil {
				logger.Error("pprof stop failed", "err", err.Error())
			}
		}()
	}

	if *loadgen {
		return runLoadgen(ctx, *target, *seed, *n, *distinct, *conc)
	}

	tracer := obs.NewTracer()
	accessLog := logger
	if *logMode == "off" {
		accessLog = nil
	}
	s := serve.New(serve.Config{
		RouteTimeout: *routeTimeout,
		Workers:      *workers,
		Limiter: serve.LimiterConfig{
			MaxConcurrent: *maxConc,
			MaxQueue:      *queue,
			RetryAfter:    *retryAfter,
		},
		ResponseCache:   serve.CacheConfig{Shards: *cacheShards, Capacity: *cacheCap, TTL: *cacheTTL},
		AnalyzerCache:   serve.CacheConfig{Shards: *cacheShards},
		Parametric:      *parametric,
		Tracer:          tracer,
		TraceSampleRate: *traceSample,
		TraceRing:       *traceRing,
		Logger:          accessLog,
	})
	bound, err := s.Start(*addr)
	if err != nil {
		logger.Error("listen failed", "addr", *addr, "err", err.Error())
		return 1
	}
	announce(bound)

	// Serve until the process is told to stop (SIGTERM/SIGINT or the
	// parent context), then drain: stop accepting, finish in-flight work.
	sigCtx, stop := signal.NotifyContext(ctx, syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	<-sigCtx.Done()
	logger.Info("draining", "timeout", drainTimeout.String())
	dctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(dctx); err != nil {
		logger.Error("drain failed", "err", err.Error())
		return 1
	}
	ctrs := tracer.Counters()
	logger.Info("drained",
		"requests", ctrs[obs.CtrServeRequests],
		"coalesced", ctrs[obs.CtrServeCoalesced],
		"shed", ctrs[obs.CtrServeShed],
		"degraded", ctrs[obs.CtrServeDegraded],
		"traces_sampled", ctrs[obs.CtrServeTracesSampled])
	return 0
}

// runLoadgen replays a deterministic script against target and prints
// the aggregate report; nonzero exit on transport errors or any 5xx.
func runLoadgen(ctx context.Context, target string, seed int64, n, distinct, conc int) int {
	if target == "" {
		logger.Error("-loadgen needs -target")
		return 1
	}
	spec := serve.GenerateLoad(seed, n, distinct)
	if conc > 0 {
		spec.Concurrency = conc
	}
	report, err := serve.RunLoad(ctx, nil, target, spec)
	if err != nil {
		logger.Error("loadgen failed", "err", err.Error())
		return 1
	}
	fmt.Println(report)
	if report.Transport > 0 || report.Errors5xx > 0 {
		logger.Error("loadgen saw failures", "transport", report.Transport, "errors_5xx", report.Errors5xx)
		return 1
	}
	return 0
}
