// Command sandump generates and prints the state space of one of the three
// SAN reward models (RMGd, RMGp, RMNd): the tangible markings, the CTMC
// generator, the initial distribution, and the reward-structure rate
// vectors. It is the debugging view a modeller would use to audit the
// models behind the paper's Figures 6-8.
//
// Usage:
//
//	sandump -model rmgd
//	sandump -model rmgp -alpha 2500 -beta 2500
//	sandump -model rmnd -mu1 1e-8
//	sandump -spec scenario.json -part gd
//
// With -spec, sandump renders one of the models generated from a
// templated N-node scenario (internal/template, docs/TEMPLATES.md)
// instead of a handwritten paper model: -part selects the guarded
// dependability model (gd), a normal-mode model (ndnew, ndold), or the
// joint overhead model (gp, available when it was built exactly).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"guardedop/internal/mdcd"
	"guardedop/internal/reward"
	"guardedop/internal/statespace"
	"guardedop/internal/template"
	"guardedop/internal/textplot"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sandump:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sandump", flag.ContinueOnError)
	var (
		model    = fs.String("model", "rmgd", "model to dump: rmgd, rmgp or rmnd")
		specPath = fs.String("spec", "", "dump a generated scenario model instead (JSON spec file; docs/TEMPLATES.md)")
		part     = fs.String("part", "gd", "with -spec: which generated model to dump: gd, ndnew, ndold or gp")
		dotMode  = fs.String("dot", "", "emit Graphviz instead of text: \"san\" for the model structure, \"space\" for the reachability graph")
		mu1      = fs.Float64("mu1", 1e-4, "first-component fault rate for rmnd")
		theta    = fs.Float64("theta", 10000, "time to next upgrade (hours)")
		lambda   = fs.Float64("lambda", 1200, "message-sending rate (1/h)")
		muNew    = fs.Float64("munew", 1e-4, "fault-manifestation rate of the upgraded version (1/h)")
		muOld    = fs.Float64("muold", 1e-8, "fault-manifestation rate of old versions (1/h)")
		coverage = fs.Float64("coverage", 0.95, "acceptance-test coverage c")
		pExt     = fs.Float64("pext", 0.1, "probability a message is external")
		alpha    = fs.Float64("alpha", 6000, "AT completion rate (1/h)")
		beta     = fs.Float64("beta", 6000, "checkpoint completion rate (1/h)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	p := mdcd.Params{
		Theta: *theta, Lambda: *lambda, MuNew: *muNew, MuOld: *muOld,
		Coverage: *coverage, PExt: *pExt, Alpha: *alpha, Beta: *beta,
	}

	var (
		space      *statespace.Space
		structures map[string]*reward.Structure
	)
	if *specPath != "" {
		var err error
		space, structures, err = scenarioSpace(*specPath, *part)
		if err != nil {
			return err
		}
		return render(space, structures, *dotMode)
	}
	switch *model {
	case "rmgd":
		gd, err := mdcd.BuildRMGd(p)
		if err != nil {
			return err
		}
		space = gd.Space
		structures = gd.Table1Structures()
	case "rmgp":
		gp, err := mdcd.BuildRMGp(p)
		if err != nil {
			return err
		}
		space = gp.Space
		structures = map[string]*reward.Structure{
			"1-rho1": gp.Overhead1Structure(),
			"1-rho2": gp.Overhead2Structure(),
		}
	case "rmnd":
		nd, err := mdcd.BuildRMNd(p, *mu1)
		if err != nil {
			return err
		}
		space = nd.Space
		structures = map[string]*reward.Structure{}
	default:
		return fmt.Errorf("unknown model %q (rmgd, rmgp or rmnd)", *model)
	}
	return render(space, structures, *dotMode)
}

// render writes the selected view of a generated space.
func render(space *statespace.Space, structures map[string]*reward.Structure, dotMode string) error {
	switch dotMode {
	case "":
		return dump(space, structures)
	case "san":
		return space.Model.WriteDot(os.Stdout)
	case "space":
		return space.WriteDot(os.Stdout)
	default:
		return fmt.Errorf("unknown -dot mode %q (san or space)", dotMode)
	}
}

// scenarioSpace builds a templated scenario and picks the requested
// generated model out of it.
func scenarioSpace(path, part string) (*statespace.Space, map[string]*reward.Structure, error) {
	spec, err := template.Load(path)
	if err != nil {
		return nil, nil, err
	}
	inst, err := template.Build(context.Background(), spec)
	if err != nil {
		return nil, nil, err
	}
	switch part {
	case "gd":
		return inst.Gd.Space, inst.Gd.Table1Structures(), nil
	case "ndnew":
		return inst.NdNew.Space, map[string]*reward.Structure{}, nil
	case "ndold":
		return inst.NdOld.Space, map[string]*reward.Structure{}, nil
	case "gp":
		if inst.GpSpace == nil {
			return nil, nil, fmt.Errorf("scenario %q solved Gp by mean-field (no joint space to dump); shrink the scenario below the joint-model cap", spec.Name)
		}
		return inst.GpSpace, map[string]*reward.Structure{}, nil
	default:
		return nil, nil, fmt.Errorf("unknown -part %q (gd, ndnew, ndold or gp)", part)
	}
}

func dump(space *statespace.Space, structures map[string]*reward.Structure) error {
	model := space.Model
	fmt.Printf("model %s: %d tangible states, %d transitions\n\n",
		model.Name(), space.NumStates(), space.Chain.Generator().NNZ()-space.NumStates())

	fmt.Println("places:")
	for _, pl := range model.Places() {
		fmt.Printf("  %-12s (initial %d)\n", pl.Name(), space.Model.InitialMarking().Get(pl))
	}
	fmt.Println()

	fmt.Println("activities:")
	for _, a := range model.Activities() {
		kind := "timed"
		if !a.Timed() {
			kind = "instantaneous"
		}
		fmt.Printf("  %-12s %-13s %d case(s)\n", a.Name(), kind, len(a.Cases()))
	}
	fmt.Println()

	names := make([]string, 0, len(structures))
	for n := range structures {
		names = append(names, n)
	}
	sort.Strings(names)

	header := []string{"state", "marking", "init"}
	header = append(header, names...)
	rows := [][]string{header}
	rateVectors := make(map[string][]float64, len(structures))
	for _, n := range names {
		rateVectors[n] = structures[n].RateVector(space)
	}
	for i, mk := range space.States {
		row := []string{
			fmt.Sprintf("%d", i),
			mk.Format(model),
			fmt.Sprintf("%.3f", space.Initial[i]),
		}
		for _, n := range names {
			row = append(row, fmt.Sprintf("%g", rateVectors[n][i]))
		}
		rows = append(rows, row)
	}
	fmt.Print(textplot.Table(rows))
	fmt.Println()

	fmt.Println("generator (from -> to : rate):")
	gen := space.Chain.Generator()
	for s := 0; s < space.NumStates(); s++ {
		gen.Row(s, func(c int, v float64) {
			if c != s && v > 0 {
				fmt.Printf("  %3d -> %3d : %g\n", s, c, v)
			}
		})
	}
	abs := space.Chain.AbsorbingStates()
	if len(abs) > 0 {
		fmt.Printf("\nabsorbing states: %v\n", abs)
	}
	fmt.Println("\nmarkings list only places holding tokens; {} is the all-zero marking.")
	fmt.Println("\ndiagnostics:")
	return space.Diagnose().WriteReport(os.Stdout)
}
