package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestDumpRMGd(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-model", "rmgd"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model RMGd", "P1Nctn", "detected", "absorbing states", "int_h"} {
		if !strings.Contains(out, want) {
			t.Errorf("rmgd dump missing %q", want)
		}
	}
}

func TestDumpRMGp(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-model", "rmgp"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model RMGp", "P1nExt", "1-rho1", "1-rho2"} {
		if !strings.Contains(out, want) {
			t.Errorf("rmgp dump missing %q", want)
		}
	}
}

func TestDumpRMNdWithMu(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-model", "rmnd", "-mu1", "1e-8"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model RMNd") {
		t.Errorf("rmnd dump incomplete:\n%s", out)
	}
}

func TestDumpUnknownModel(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-model", "wat"}) }); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestDumpDotModes(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-model", "rmnd", "-dot", "san"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph \"RMNd\"") {
		t.Errorf("san dot output wrong:\n%s", out)
	}
	out, err = capture(t, func() error { return run([]string{"-model", "rmnd", "-dot", "space"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph \"RMNd-statespace\"") {
		t.Errorf("space dot output wrong:\n%s", out)
	}
	if _, err := capture(t, func() error { return run([]string{"-dot", "bogus"}) }); err == nil {
		t.Error("unknown dot mode accepted")
	}
}

func TestDumpScenarioSpec(t *testing.T) {
	spec := filepath.Join("..", "..", "examples", "scenarios", "three-node.json")
	out, err := capture(t, func() error { return run([]string{"-spec", spec, "-part", "gd"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"model Gd:three-node", "P3.ctn", "detected", "int_h"} {
		if !strings.Contains(out, want) {
			t.Errorf("scenario gd dump missing %q", want)
		}
	}
	out, err = capture(t, func() error { return run([]string{"-spec", spec, "-part", "gp", "-dot", "san"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph \"Gp:three-node\"") {
		t.Errorf("scenario gp dot output wrong:\n%s", out)
	}
	if _, err := capture(t, func() error { return run([]string{"-spec", spec, "-part", "wat"}) }); err == nil {
		t.Error("unknown -part accepted")
	}
}
