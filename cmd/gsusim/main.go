// Command gsusim cross-validates the paper's model-translation solution of
// the performability index against Monte-Carlo simulation of the
// monolithic (untranslated, non-Markovian) GSU process.
//
// Usage:
//
//	gsusim                       # scaled-down default configuration
//	gsusim -paths 50000          # tighter confidence intervals
//	gsusim -full -paths 500      # paper-scale Table 3 parameters (slow!)
//	gsusim -rho                  # also validate rho1/rho2 by simulation
package main

import (
	"flag"
	"fmt"
	"os"

	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs/pprofutil"
	"guardedop/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsusim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gsusim", flag.ContinueOnError)
	var (
		paths     = fs.Int("paths", 20000, "Monte-Carlo replications per phi point")
		seed      = fs.Int64("seed", 2002, "random seed")
		full      = fs.Bool("full", false, "use the paper-scale Table 3 parameters (orders of magnitude slower)")
		checkRho  = fs.Bool("rho", false, "also estimate rho1/rho2 by long-run simulation of RMGp")
		pprofSpec = fs.String("pprof", "", "profiling: \"cpu[=file]\", \"mem[=file]\", or a host:port to serve net/http/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *pprofSpec != "" {
		stop, perr := pprofutil.StartPprof(*pprofSpec)
		if perr != nil {
			return perr
		}
		defer func() {
			if cerr := stop(); cerr != nil && err == nil {
				err = fmt.Errorf("pprof: %w", cerr)
			}
		}()
	}

	cfg := experiments.DefaultValsimConfig()
	cfg.Paths = *paths
	cfg.Seed = *seed
	if *full {
		p := mdcd.DefaultParams()
		cfg.Params = p
		cfg.Phis = []float64{0, 2000, 4000, 6000, 8000, 10000}
		fmt.Println("running at paper scale (theta=10000, lambda=1200); this simulates")
		fmt.Println("~10^7 events per path — budget minutes per phi point.")
	}

	if *checkRho {
		gp, err := mdcd.BuildRMGp(cfg.Params)
		if err != nil {
			return err
		}
		analytic, err := gp.Measures()
		if err != nil {
			return err
		}
		rho1, rho2, err := sim.EstimateRho(cfg.Params, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("rho1: analytic %.4f, simulated %.4f\n", analytic.Rho1, rho1)
		fmt.Printf("rho2: analytic %.4f, simulated %.4f\n\n", analytic.Rho2, rho2)
	}

	e, ok := experiments.ByID("valsim")
	if !ok {
		return fmt.Errorf("valsim experiment not registered")
	}
	if *full || *paths != 20000 || *seed != 2002 {
		// Custom configuration: run directly rather than through the
		// registered default-config experiment.
		rows, err := experiments.RunValsim(cfg)
		if err != nil {
			return err
		}
		fmt.Printf("%-8s %-12s %-22s %-10s %s\n", "phi", "Y analytic", "Y sim (fixed gamma)", "stderr", "Y sim (per-path)")
		for _, r := range rows {
			fmt.Printf("%-8.0f %-12.4f %-22.4f %-10.4f %.4f\n",
				r.Phi, r.AnalyticY, r.SimY, r.SimYStdErr, r.PerPathY)
		}
		return nil
	}
	return e.Run(os.Stdout)
}
