// Command gsusim cross-validates the paper's model-translation solution of
// the performability index against Monte-Carlo simulation of the
// monolithic (untranslated, non-Markovian) GSU process.
//
// Usage:
//
//	gsusim                       # scaled-down default configuration
//	gsusim -paths 50000          # tighter confidence intervals
//	gsusim -full -paths 500      # paper-scale Table 3 parameters (slow!)
//	gsusim -rho                  # also validate rho1/rho2 by simulation
//	gsusim -metrics text         # dump run metrics to stderr (text|json|prom)
//	gsusim -trace run.json       # write the JSON trace document
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"guardedop/internal/experiments"
	"guardedop/internal/mdcd"
	"guardedop/internal/obs"
	"guardedop/internal/obs/pprofutil"
	"guardedop/internal/robust"
	"guardedop/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "gsusim:", err)
		os.Exit(1)
	}
}

func run(args []string) (err error) {
	fs := flag.NewFlagSet("gsusim", flag.ContinueOnError)
	var (
		paths      = fs.Int("paths", 20000, "Monte-Carlo replications per phi point")
		seed       = fs.Int64("seed", 2002, "random seed")
		full       = fs.Bool("full", false, "use the paper-scale Table 3 parameters (orders of magnitude slower)")
		checkRho   = fs.Bool("rho", false, "also estimate rho1/rho2 by long-run simulation of RMGp")
		metricsVal = fs.String("metrics", "", "dump run metrics to stderr after the cross-validation: \"text\", \"json\" or \"prom\"")
		traceOut   = fs.String("trace", "", "write a JSON trace and run manifest to this file (same schema as gsueval -trace; docs/OBSERVABILITY.md)")
		pprofSpec  = fs.String("pprof", "", "profiling: \"cpu[=file]\", \"mem[=file]\", or a host:port to serve net/http/pprof")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *metricsVal {
	case "", "text", "json", "prom":
	default:
		return fmt.Errorf("-metrics must be \"text\", \"json\" or \"prom\", got %q", *metricsVal)
	}
	if *pprofSpec != "" {
		stop, perr := pprofutil.StartPprof(*pprofSpec)
		if perr != nil {
			return perr
		}
		defer func() {
			if cerr := stop(); cerr != nil && err == nil {
				err = fmt.Errorf("pprof: %w", cerr)
			}
		}()
	}

	cfg := experiments.DefaultValsimConfig()
	cfg.Paths = *paths
	cfg.Seed = *seed
	if *full {
		p := mdcd.DefaultParams()
		cfg.Params = p
		cfg.Phis = []float64{0, 2000, 4000, 6000, 8000, 10000}
		fmt.Println("running at paper scale (theta=10000, lambda=1200); this simulates")
		fmt.Println("~10^7 events per path — budget minutes per phi point.")
	}

	// The tracer captures the cross-validation's analytic solver budget;
	// the trace document is written on success or failure.
	ctx := context.Background()
	var tracer *obs.Tracer
	if *traceOut != "" || *metricsVal != "" {
		tracer = obs.NewTracer()
		ctx = obs.WithTracer(ctx, tracer)
	}
	if *traceOut != "" {
		man := obs.Manifest{
			Tool:       "gsusim",
			Seed:       *seed,
			GridPoints: len(cfg.Phis),
			Params: map[string]float64{
				"theta": cfg.Params.Theta, "lambda": cfg.Params.Lambda,
				"munew": cfg.Params.MuNew, "muold": cfg.Params.MuOld,
				"coverage": cfg.Params.Coverage, "pext": cfg.Params.PExt,
				"alpha": cfg.Params.Alpha, "beta": cfg.Params.Beta,
			},
		}
		defer func() {
			if werr := writeTraceFile(*traceOut, tracer, man); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if *metricsVal != "" {
		defer func() {
			if merr := dumpMetrics(*metricsVal, tracer); merr != nil && err == nil {
				err = merr
			}
		}()
	}

	if *checkRho {
		gp, err := mdcd.BuildRMGp(cfg.Params)
		if err != nil {
			return err
		}
		analytic, err := gp.Measures()
		if err != nil {
			return err
		}
		rho1, rho2, err := sim.EstimateRho(cfg.Params, 2000, *seed)
		if err != nil {
			return err
		}
		fmt.Printf("rho1: analytic %.4f, simulated %.4f\n", analytic.Rho1, rho1)
		fmt.Printf("rho2: analytic %.4f, simulated %.4f\n\n", analytic.Rho2, rho2)
	}

	if tracer == nil && !*full && *paths == 20000 && *seed == 2002 {
		// Default untraced configuration: run the registered experiment's
		// full narrative report.
		e, ok := experiments.ByID("valsim")
		if !ok {
			return fmt.Errorf("valsim experiment not registered")
		}
		return e.Run(os.Stdout)
	}
	rows, err := experiments.RunValsimContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %-12s %-22s %-10s %s\n", "phi", "Y analytic", "Y sim (fixed gamma)", "stderr", "Y sim (per-path)")
	for _, r := range rows {
		fmt.Printf("%-8.0f %-12.4f %-22.4f %-10.4f %.4f\n",
			r.Phi, r.AnalyticY, r.SimY, r.SimYStdErr, r.PerPathY)
	}
	return nil
}

// dumpMetrics writes the tracer's collected run metrics to stderr in the
// requested mode, through the same robust.Metrics vocabulary and shared
// Prometheus exposition path as gsueval -metrics and gsuserve /metrics.
func dumpMetrics(mode string, tr *obs.Tracer) error {
	m := robust.NewMetrics(0, 0)
	m.AddTrace(tr)
	switch mode {
	case "json":
		return m.WriteJSON(os.Stderr)
	case "prom":
		return m.WritePromWith(os.Stderr, tr.Histograms())
	default:
		m.WriteText(os.Stderr)
		return nil
	}
}

// writeTraceFile writes the run's trace document (manifest + span tree +
// histograms) to path as indented JSON.
func writeTraceFile(path string, tr *obs.Tracer, man obs.Manifest) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	werr := obs.WriteTrace(f, tr, man)
	if cerr := f.Close(); werr == nil && cerr != nil {
		werr = fmt.Errorf("trace: %w", cerr)
	}
	return werr
}
