package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardedop/internal/obs"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunSmallCustomConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo CLI test skipped in -short mode")
	}
	out, err := capture(t, func() error { return run([]string{"-paths", "500", "-seed", "7"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Y analytic") {
		t.Errorf("output missing table header:\n%s", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-definitely-not-a-flag"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
	if _, err := capture(t, func() error { return run([]string{"-metrics", "xml"}) }); err == nil {
		t.Error("invalid -metrics mode accepted")
	}
}

// TestRunTraceDocument: -trace must write a gsueval-schema trace document
// whose spans and counters attribute the cross-validation's analytic
// solver budget.
func TestRunTraceDocument(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo CLI test skipped in -short mode")
	}
	path := filepath.Join(t.TempDir(), "valsim-trace.json")
	_, err := capture(t, func() error {
		return run([]string{"-paths", "300", "-seed", "11", "-trace", path})
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc obs.TraceDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("trace file is not a TraceDoc: %v", err)
	}
	if doc.Manifest.Tool != "gsusim" || doc.Manifest.SchemaVersion != obs.TraceSchemaVersion {
		t.Errorf("manifest = %+v, want tool gsusim at the current schema version", doc.Manifest)
	}
	if doc.Manifest.Seed != 11 || doc.Manifest.GridPoints != 6 {
		t.Errorf("manifest seed/grid = %d/%d, want 11/6", doc.Manifest.Seed, doc.Manifest.GridPoints)
	}
	points := 0
	for _, sp := range doc.Spans {
		if sp.Name == "valsim.point" {
			points++
		}
	}
	if points != 6 {
		t.Errorf("%d valsim.point spans, want one per phi (6)", points)
	}
	if doc.Manifest.Counters[obs.CtrSolvePasses]+doc.Manifest.Counters[obs.CtrParametricHits] == 0 {
		t.Errorf("trace counters attribute no analytic solver work: %v", doc.Manifest.Counters)
	}
}
