package main

import (
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	runErr := fn()
	w.Close()
	out := <-done
	return out, runErr
}

func TestRunSmallCustomConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("Monte-Carlo CLI test skipped in -short mode")
	}
	out, err := capture(t, func() error { return run([]string{"-paths", "500", "-seed", "7"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Y analytic") {
		t.Errorf("output missing table header:\n%s", out)
	}
}

func TestRunBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-definitely-not-a-flag"}) }); err == nil {
		t.Error("unknown flag accepted")
	}
}
