package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"guardedop/internal/benchreg"
)

// capture runs fn with os.Stdout redirected into a pipe and returns
// what it printed alongside fn's exit code.
func capture(t *testing.T, fn func() int) (string, int) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string)
	go func() {
		buf := make([]byte, 0, 1<<16)
		tmp := make([]byte, 4096)
		for {
			n, err := r.Read(tmp)
			buf = append(buf, tmp[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(buf)
	}()
	code := fn()
	w.Close()
	return <-done, code
}

func TestRunList(t *testing.T) {
	out, code := capture(t, func() int { return run(context.Background(), []string{"-list"}) })
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, want := range []string{"grid50.numeric", "serve.coalesced", "template.n8"} {
		if !strings.Contains(out, want) {
			t.Errorf("-list output missing %s:\n%s", want, out)
		}
	}
}

func TestRunBadUsage(t *testing.T) {
	if _, code := capture(t, func() int { return run(context.Background(), []string{"-no-such-flag"}) }); code != 1 {
		t.Errorf("unknown flag: exit %d, want 1", code)
	}
	if _, code := capture(t, func() int {
		return run(context.Background(), []string{"-compare", "only-one.json"})
	}); code != 1 {
		t.Errorf("-compare with one arg: exit %d, want 1", code)
	}
	if _, code := capture(t, func() int {
		return run(context.Background(), []string{"-bench", "no.such.benchmark"})
	}); code != 1 {
		t.Errorf("empty -bench match: exit %d, want 1", code)
	}
}

func TestRunFilteredSuiteToStdoutAndFile(t *testing.T) {
	if testing.Short() {
		t.Skip("suite execution skipped in -short mode")
	}
	out, code := capture(t, func() int {
		return run(context.Background(), []string{"-bench", "template.n3", "-runs", "1", "-stdout"})
	})
	if code != 0 {
		t.Fatalf("-stdout run exit %d", code)
	}
	rep, err := benchreg.Load(strings.NewReader(out))
	if err != nil {
		t.Fatalf("stdout is not a valid report: %v", err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Name != "template.n3" {
		t.Fatalf("filtered report = %+v", rep.Results)
	}
	if rep.Results[0].Counters["template.states"] != 276 {
		t.Fatalf("template.n3 counters = %v", rep.Results[0].Counters)
	}

	dir := t.TempDir()
	outDir := filepath.Join(dir, "bench")
	out, code = capture(t, func() int {
		return run(context.Background(), []string{"-bench", "template.n3", "-runs", "1", "-out", outDir})
	})
	if code != 0 {
		t.Fatalf("file run exit %d", code)
	}
	want := benchreg.SeqPath(outDir, 1)
	if strings.TrimSpace(out) != want {
		t.Fatalf("printed path %q, want %q", strings.TrimSpace(out), want)
	}
	if _, err := benchreg.LoadFile(want); err != nil {
		t.Fatalf("written report unreadable: %v", err)
	}
}

// TestCompareExitCodes is the acceptance check for the regression gate:
// identical reports exit 0, an injected counter regression exits 2.
func TestCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	base := benchreg.NewReport(1)
	base.Results = []benchreg.Result{{
		Name:     "grid50.numeric",
		Runs:     1,
		Wall:     benchreg.Wall{MinNanos: 1000, MedianNanos: 1000, MaxNanos: 1000},
		Counters: map[string]int64{"ctmc.solve_passes": 98},
	}}
	oldPath := filepath.Join(dir, "old.json")
	samePath := filepath.Join(dir, "same.json")
	regressedPath := filepath.Join(dir, "regressed.json")
	if err := benchreg.WriteFile(oldPath, base); err != nil {
		t.Fatal(err)
	}
	if err := benchreg.WriteFile(samePath, base); err != nil {
		t.Fatal(err)
	}
	regressed := benchreg.NewReport(2)
	regressed.Results = []benchreg.Result{{
		Name:     "grid50.numeric",
		Runs:     1,
		Wall:     benchreg.Wall{MinNanos: 1000, MedianNanos: 1000, MaxNanos: 1000},
		Counters: map[string]int64{"ctmc.solve_passes": 150},
	}}
	if err := benchreg.WriteFile(regressedPath, regressed); err != nil {
		t.Fatal(err)
	}

	out, code := capture(t, func() int {
		return run(context.Background(), []string{"-compare", oldPath, samePath})
	})
	if code != 0 {
		t.Fatalf("identical compare exit %d:\n%s", code, out)
	}
	if !strings.Contains(out, "no regressions") {
		t.Errorf("clean compare output missing summary:\n%s", out)
	}

	out, code = capture(t, func() int {
		return run(context.Background(), []string{"-compare", oldPath, regressedPath})
	})
	if code != 2 {
		t.Fatalf("injected regression exit %d, want 2:\n%s", code, out)
	}
	if !strings.Contains(out, "counter-regression") {
		t.Errorf("regression compare output missing finding:\n%s", out)
	}

	if _, code := capture(t, func() int {
		return run(context.Background(), []string{"-compare", filepath.Join(dir, "absent.json"), samePath})
	}); code != 1 {
		t.Errorf("unreadable report: exit %d, want 1", code)
	}
}

// TestRunViolationExitCode drives a corrupted report through the same
// schema guard the CI job relies on.
func TestCompareRejectsForeignSchema(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	doc, _ := json.Marshal(map[string]any{"schema_version": 99, "tool": "gsubench"})
	if err := os.WriteFile(bad, doc, 0o644); err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.json")
	if err := benchreg.WriteFile(good, benchreg.NewReport(1)); err != nil {
		t.Fatal(err)
	}
	if _, code := capture(t, func() int {
		return run(context.Background(), []string{"-compare", bad, good})
	}); code != 1 {
		t.Errorf("foreign schema: exit %d, want 1", code)
	}
}
