// Command gsubench runs the repo's pinned performance suite and manages
// its BENCH_<seq>.json trajectory — the continuous performance
// observatory (docs/BENCHMARKING.md).
//
// Usage:
//
//	gsubench [-out DIR] [-runs 3] [-bench SUBSTR] [-stdout]
//	gsubench -list
//	gsubench -compare old.json new.json [-wall-tolerance 0.5]
//
// The default mode executes the suite and writes the next BENCH_<seq>.json
// into -out (default "bench"). Each entry pairs wall-clock statistics
// with the run's deterministic work counters; the runner verifies the
// counters repeat identically across repetitions and that every pinned
// rule holds, so the report is trustworthy input for -compare.
//
// -compare diffs two reports: deterministic-counter regressions and
// benchmarks missing from the new report fail hard; wall-clock medians
// fail only beyond -wall-tolerance.
//
// Exit codes: 0 clean; 1 usage or execution error; 2 regression (a
// pinned rule violated at run time, or -compare found a gating diff).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"guardedop/internal/benchreg"
)

func main() {
	os.Exit(run(context.Background(), os.Args[1:]))
}

func run(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("gsubench", flag.ContinueOnError)
	var (
		outDir  = fs.String("out", "bench", "directory for BENCH_<seq>.json reports")
		runs    = fs.Int("runs", 3, "repetitions per benchmark (wall stats; counters must repeat exactly)")
		bench   = fs.String("bench", "", "run only benchmarks whose name contains this substring")
		stdout  = fs.Bool("stdout", false, "write the report to stdout instead of -out")
		list    = fs.Bool("list", false, "list the suite's benchmark names and exit")
		compare = fs.Bool("compare", false, "compare two report files: gsubench -compare old.json new.json")
		wallTol = fs.Float64("wall-tolerance", benchreg.DefaultWallTolerance, "relative wall-clock band treated as noise by -compare")
	)
	if err := fs.Parse(args); err != nil {
		return 1
	}

	if *list {
		for _, b := range benchreg.Suite() {
			fmt.Println(b.Name)
		}
		return 0
	}

	if *compare {
		if fs.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "gsubench: -compare needs exactly two report files (old new)")
			return 1
		}
		return runCompare(fs.Arg(0), fs.Arg(1), *wallTol)
	}

	opts := benchreg.Options{
		Runs:     *runs,
		Progress: func(format string, args ...any) { fmt.Fprintf(os.Stderr, format+"\n", args...) },
	}
	if *bench != "" {
		opts.Match = func(name string) bool { return strings.Contains(name, *bench) }
	}
	rep, violations, err := benchreg.Run(ctx, benchreg.Suite(), opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsubench:", err)
		return 1
	}
	if len(rep.Results) == 0 {
		fmt.Fprintf(os.Stderr, "gsubench: no benchmark matches -bench %q\n", *bench)
		return 1
	}

	if *stdout {
		if err := benchreg.Write(os.Stdout, rep); err != nil {
			fmt.Fprintln(os.Stderr, "gsubench:", err)
			return 1
		}
	} else {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "gsubench:", err)
			return 1
		}
		rep.Seq = benchreg.NextSeq(*outDir)
		path := benchreg.SeqPath(*outDir, rep.Seq)
		if err := benchreg.WriteFile(path, rep); err != nil {
			fmt.Fprintln(os.Stderr, "gsubench:", err)
			return 1
		}
		fmt.Println(path)
	}

	if len(violations) > 0 {
		for _, v := range violations {
			fmt.Fprintln(os.Stderr, "gsubench: RULE VIOLATION:", v)
		}
		return 2
	}
	return 0
}

// runCompare diffs two report files and prints every finding.
func runCompare(oldPath, newPath string, wallTol float64) int {
	old, err := benchreg.LoadFile(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsubench:", err)
		return 1
	}
	new, err := benchreg.LoadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gsubench:", err)
		return 1
	}
	diffs := benchreg.Compare(old, new, wallTol)
	for _, d := range diffs {
		fmt.Println(d)
	}
	if benchreg.Failed(diffs) {
		fmt.Fprintln(os.Stderr, "gsubench: regression detected")
		return 2
	}
	fmt.Printf("gsubench: no regressions (%d benchmarks, %d notes)\n", len(old.Results), len(diffs))
	return 0
}
