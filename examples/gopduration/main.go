// gopduration: the paper's headline use case. Given the reliability of an
// upgraded flight-software component and the overhead of the MDCD
// safeguards, how long should guarded operation last?
//
// This example reproduces the engineering workflow behind the paper's
// Figure 9: sweep the guarded-operation duration phi, evaluate the
// performability index Y(phi) via the successive model translation, and
// report the optimal duration together with the constituent measures that
// explain it.
//
// Run with: go run ./examples/gopduration
package main

import (
	"fmt"
	"log"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

func main() {
	// Table 3 of the paper: a 10000-hour mission segment, messages every
	// 3 s, AT/checkpoint completion in 600 ms, AT coverage 0.95, and an
	// upgraded component with a fault-manifestation rate of 1e-4 per hour.
	p := mdcd.DefaultParams()

	analyzer, err := core.NewAnalyzer(p)
	if err != nil {
		log.Fatal(err)
	}
	rho1, rho2 := analyzer.Rho()
	fmt.Printf("derived overhead parameters: rho1 = %.4f, rho2 = %.4f\n", rho1, rho2)
	fmt.Printf("(the paper's Table 2 derives 0.98 and 0.95 for this setting)\n\n")

	phis := core.SweepGrid(p.Theta, 10)
	results, err := analyzer.Curve(phis)
	if err != nil {
		log.Fatal(err)
	}

	var ys []float64
	best := results[0]
	for _, r := range results {
		ys = append(ys, r.Y)
		if r.Y > best.Y {
			best = r
		}
	}
	fmt.Print(textplot.Chart("performability index Y vs guarded-operation duration phi",
		phis, []textplot.Series{{Name: "Y(phi)", Y: ys}}, 66, 14))

	fmt.Printf("\noptimal duration: phi = %.0f hours with Y = %.4f\n", best.Phi, best.Y)
	fmt.Printf("(the paper's Figure 9 reports phi = 7000 with Y ≈ 1.45)\n\n")

	fmt.Println("why: the two degradation sources at the optimum -")
	fmt.Printf("  P(error detected during G-OP)       = %.4f\n", best.Gd.IntH)
	fmt.Printf("  P(undetected failure during G-OP)   = %.4f\n", best.Gd.PUndetectedFailure)
	fmt.Printf("  P(no error through G-OP)            = %.4f\n", best.Gd.PA1)
	fmt.Printf("  discount for an aborted upgrade     = %.4f\n", best.Gamma)
	fmt.Printf("  safeguard overhead share (P1new,P2) = %.4f, %.4f\n", 1-rho1, 1-rho2)

	// A shorter guarded operation leaves more exposure to undetected
	// failures after the safeguards are switched off; a longer one keeps
	// paying overhead and discounts detected-error missions harder. Show
	// the two neighbours for contrast.
	for _, phi := range []float64{best.Phi - 2000, best.Phi + 2000} {
		if phi < 0 || phi > p.Theta {
			continue
		}
		r, err := analyzer.Evaluate(phi)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nphi = %.0f: Y = %.4f (E[W_phi] = %.0f vs %.0f at the optimum)",
			phi, r.Y, r.EWPhi, best.EWPhi)
	}
	fmt.Println()
}
