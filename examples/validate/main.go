// validate: end-to-end check of the successive model translation against
// discrete-event simulation of the monolithic GSU process.
//
// The paper's whole point is that the monolithic process X — with its
// deterministic guarded-operation cutoff phi — is awkward to solve
// analytically, so the measure is translated into constituent reward
// variables on three Markov models. A simulator has no trouble with the
// deterministic cutoff, so simulating X directly and comparing Y values
// validates every step of the translation.
//
// Run with: go run ./examples/validate
package main

import (
	"fmt"
	"log"

	"guardedop/internal/core"
	"guardedop/internal/experiments"
	"guardedop/internal/sim"
)

func main() {
	// A dimensionally equivalent scaled-down configuration (same mu*theta
	// and phi/theta as Table 3, ~100x fewer simulated events) keeps this
	// example interactive; see cmd/gsusim -full for the paper scale.
	cfg := experiments.DefaultValsimConfig()
	cfg.Paths = 20000

	fmt.Printf("parameters: theta=%g h, lambda=%g /h, mu_new=%g /h, c=%g\n",
		cfg.Params.Theta, cfg.Params.Lambda, cfg.Params.MuNew, cfg.Params.Coverage)
	fmt.Printf("replications: %d paths per phi\n\n", cfg.Paths)

	rows, err := experiments.RunValsim(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %-12s %-20s %-10s\n", "phi", "analytic Y", "simulated Y (±2se)", "per-path-gamma Y")
	for _, r := range rows {
		fmt.Printf("%-8.0f %-12.4f %.4f ± %.4f      %.4f\n",
			r.Phi, r.AnalyticY, r.SimY, 2*r.SimYStdErr, r.PerPathY)
	}

	// Also validate the steady-state overhead solution by simulation.
	rho1Sim, rho2Sim, err := sim.EstimateRho(cfg.Params, 2000, 7)
	if err != nil {
		log.Fatal(err)
	}
	analyzer, err := core.NewAnalyzer(cfg.Params)
	if err != nil {
		log.Fatal(err)
	}
	rho1, rho2 := analyzer.Rho()
	fmt.Printf("\nrho1: analytic %.4f vs simulated %.4f\n", rho1, rho1Sim)
	fmt.Printf("rho2: analytic %.4f vs simulated %.4f\n", rho2, rho2Sim)
}
