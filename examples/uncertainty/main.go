// uncertainty: choosing a guarded-operation duration under an honest
// posterior for the upgraded component's fault rate.
//
// The paper estimates mu_new from onboard validation (Section 2) and then
// treats it as known. This example keeps the uncertainty: a conjugate
// Gamma posterior for mu_new is propagated through the performability
// analysis, producing a distribution over optimal durations and a robust
// duration that maximises the posterior-expected index.
//
// Run with: go run ./examples/uncertainty
package main

import (
	"fmt"
	"log"

	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
	"guardedop/internal/uncertainty"
)

func main() {
	// Engineering prior: deliveries of this codebase historically manifest
	// design faults at ~2e-4 per hour (Gamma(2, 1e4)).
	prior := uncertainty.Gamma{Shape: 2, Rate: 1e4}

	// Onboard validation observed the shadow replica fault-free for 10000
	// hours; the conjugate update pulls the rate estimate down.
	posterior, err := uncertainty.PosteriorRate(prior, 0, 10000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("prior mean mu_new:     %.2e /h\n", prior.Mean())
	fmt.Printf("posterior mean mu_new: %.2e /h (after 10000 fault-free validation hours)\n\n",
		posterior.Mean())

	prop, err := uncertainty.Propagate(mdcd.DefaultParams(), posterior, uncertainty.PropagateOptions{
		Samples: 300,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Print(textplot.Histogram("posterior distribution of the optimal duration phi* (hours)",
		prop.PhiStars, 8, 40))
	fmt.Println()
	q := func(s []float64, p float64) float64 { return uncertainty.Quantile(s, p) }
	fmt.Printf("phi* quantiles: 5%% = %.0f, median = %.0f, 95%% = %.0f\n",
		q(prop.PhiStars, 0.05), q(prop.PhiStars, 0.5), q(prop.PhiStars, 0.95))
	fmt.Printf("max-Y quantiles: 5%% = %.3f, median = %.3f, 95%% = %.3f\n\n",
		q(prop.MaxYs, 0.05), q(prop.MaxYs, 0.5), q(prop.MaxYs, 0.95))

	fmt.Printf("plug-in decision  (optimise at posterior mean): phi = %.0f\n", prop.PlugInPhi)
	fmt.Printf("robust decision   (maximise posterior E[Y]):    phi = %.0f (E[Y] = %.4f)\n",
		prop.RobustPhi, prop.RobustEY)
	fmt.Println()
	fmt.Println("the spread of phi* is the Figure 9 sensitivity made explicit: before")
	fmt.Println("committing to a duration, the designer should know how much of that")
	fmt.Println("spread the validation campaign has actually eliminated.")
}
