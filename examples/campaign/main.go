// campaign: planning a multi-upgrade mission with guarded operation.
//
// The paper analyses one onboard upgrade cycle of length theta. A long-life
// mission performs several: after each upgrade the software matures, so
// the fault-manifestation rate of the "new" component drops from cycle to
// cycle. This example plans a 40000-hour mission with four upgrade cycles,
// picking the optimal guarded-operation duration for each cycle and
// totalling the expected mission worth — guarded versus unguarded.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

func main() {
	const cycles = 4
	const cycleLength = 10000.0 // hours between scheduled upgrades

	// Each delivery roughly halves the residual design-fault rate as the
	// codebase matures (the onboard-validation stage feeds this estimate).
	muNew := []float64{2e-4, 1e-4, 0.5e-4, 0.25e-4}

	rows := [][]string{{"cycle", "mu_new", "phi*", "Y(phi*)", "E[W] guarded", "E[W] unguarded", "worth gained"}}
	var totalGuarded, totalUnguarded, totalIdeal float64

	for i := 0; i < cycles; i++ {
		p := mdcd.DefaultParams()
		p.Theta = cycleLength
		p.MuNew = muNew[i]

		analyzer, err := core.NewAnalyzer(p)
		if err != nil {
			log.Fatal(err)
		}
		best, err := analyzer.OptimizePhi(core.OptimizeOptions{Tolerance: 25})
		if err != nil {
			log.Fatal(err)
		}
		unguarded, err := analyzer.Evaluate(0)
		if err != nil {
			log.Fatal(err)
		}

		totalGuarded += best.EWPhi
		totalUnguarded += unguarded.EW0
		totalIdeal += best.EWI

		rows = append(rows, []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.2e", p.MuNew),
			fmt.Sprintf("%.0f", best.Phi),
			fmt.Sprintf("%.4f", best.Y),
			fmt.Sprintf("%.0f", best.EWPhi),
			fmt.Sprintf("%.0f", unguarded.EW0),
			fmt.Sprintf("%+.0f", best.EWPhi-unguarded.EW0),
		})
	}

	fmt.Printf("mission: %d upgrade cycles x %.0f h (worth unit: process-hours of service)\n\n",
		cycles, cycleLength)
	fmt.Print(textplot.Table(rows))
	fmt.Println()
	fmt.Printf("totals over the campaign:\n")
	fmt.Printf("  ideal worth          : %.0f\n", totalIdeal)
	fmt.Printf("  guarded (phi* each)  : %.0f  (%.1f%% of ideal)\n",
		totalGuarded, 100*totalGuarded/totalIdeal)
	fmt.Printf("  unguarded            : %.0f  (%.1f%% of ideal)\n",
		totalUnguarded, 100*totalUnguarded/totalIdeal)
	fmt.Printf("  campaign-level index : %.3f\n",
		(totalIdeal-totalUnguarded)/(totalIdeal-totalGuarded))
	fmt.Println()
	fmt.Println("note how phi* shrinks as the software matures (the Fig. 9 effect,")
	fmt.Println("cycle over cycle): mature deliveries need less escorting.")
}
