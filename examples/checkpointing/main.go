// checkpointing: a second case study showing the toolkit beyond the GSU
// models — the classic optimal-checkpoint-interval problem of the
// checkpointing literature the paper positions itself against (its
// references [18-20]).
//
// A long-running computation saves a checkpoint (mean duration C) after
// every completed work segment of mean length T. Failures strike at rate
// lambda; recovery takes mean R and rolls back to the last checkpoint,
// losing the work done since. How long should a segment be?
//
// Work segments are modelled as Erlang-k stages so that a failure really
// does lose partial work (with exponential segments the memoryless
// property would hide the loss). The efficiency — useful committed work
// per unit time — is a steady-state impulse reward: each completed
// checkpoint commits T units of work. The numerical optimum is compared
// against Young's classical approximation T* ≈ sqrt(2·C/lambda).
//
// Run with: go run ./examples/checkpointing
package main

import (
	"fmt"
	"log"
	"math"

	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
	"guardedop/internal/textplot"
)

const (
	lambda    = 0.02 // failures per hour
	ckptCost  = 0.1  // mean checkpoint duration C (hours)
	recovery  = 0.5  // mean recovery duration R (hours)
	workUnits = 8    // Erlang stages per work segment
)

// efficiency returns the long-run committed-work fraction for segment
// length T.
func efficiency(T float64) (float64, error) {
	m := san.NewModel("checkpointing")
	working := m.AddPlace("working", 1)
	ckpt := m.AddPlace("checkpointing", 0)
	recov := m.AddPlace("recovering", 0)
	done := m.AddPlace("stagesDone", 0)

	// Work stages complete at rate k/T while working.
	stage := m.AddTimedActivity("stage", san.ConstRate(workUnits/T)).
		AddInputGate("working", func(mk san.Marking) bool { return mk.Get(working) == 1 }, nil)
	stage.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		d := mk.Get(done) + 1
		if d == workUnits {
			mk.Set(working, 0)
			mk.Set(ckpt, 1)
		}
		mk.Set(done, d)
	})

	// A completed checkpoint commits the segment.
	commit := m.AddTimedActivity("commit", san.ConstRate(1/ckptCost)).
		AddInputArc(ckpt, 1)
	commit.AddCase(san.ConstProb(1)).AddOutputArc(working, 1).
		AddOutputFunc(func(mk san.Marking) { mk.Set(done, 0) })

	// Failures strike during work and during checkpointing; uncommitted
	// stages are lost.
	fail := m.AddTimedActivity("fail", san.ConstRate(lambda)).
		AddInputGate("active", func(mk san.Marking) bool { return mk.Get(recov) == 0 }, nil)
	fail.AddCase(san.ConstProb(1)).AddOutputFunc(func(mk san.Marking) {
		mk.Set(working, 0)
		mk.Set(ckpt, 0)
		mk.Set(recov, 1)
		mk.Set(done, 0)
	})

	rec := m.AddTimedActivity("recover", san.ConstRate(1/recovery)).
		AddInputArc(recov, 1)
	rec.AddCase(san.ConstProb(1)).AddOutputArc(working, 1)

	sp, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		return 0, err
	}
	// Each commit is worth T hours of work: efficiency = T x commit rate.
	commits := reward.NewImpulseStructure().Add("commit", 1)
	rate, err := reward.SteadyStateImpulseRate(sp, commits)
	if err != nil {
		return 0, err
	}
	return T * rate, nil
}

func main() {
	var ts, effs []float64
	bestT, bestEff := 0.0, 0.0
	for T := 0.2; T <= 8.0001; T += 0.2 {
		eff, err := efficiency(T)
		if err != nil {
			log.Fatal(err)
		}
		ts = append(ts, T)
		effs = append(effs, eff)
		if eff > bestEff {
			bestT, bestEff = T, eff
		}
	}

	fmt.Printf("failure rate %.3g /h, checkpoint cost %.2g h, recovery %.2g h, Erlang-%d segments\n\n",
		lambda, ckptCost, recovery, workUnits)
	fmt.Print(textplot.Chart("committed-work efficiency vs segment length T (hours)",
		ts, []textplot.Series{{Name: "efficiency", Y: effs}}, 66, 12))

	young := math.Sqrt(2 * ckptCost / lambda)
	fmt.Printf("\nnumerical optimum: T = %.1f h (efficiency %.4f)\n", bestT, bestEff)
	fmt.Printf("Young's approximation: T* = sqrt(2C/lambda) = %.1f h\n", young)
	fmt.Println("\nthe same SAN -> state space -> reward pipeline that evaluates the")
	fmt.Println("guarded-operation index answers the checkpoint-frequency question the")
	fmt.Println("classical literature (the paper's refs [18-20]) studies analytically.")
}
