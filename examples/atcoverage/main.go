// atcoverage: how good does the acceptance test have to be for guarded
// operation to pay off?
//
// This example reproduces the paper's Figure 11 study plus its Section 6
// text experiments: sweeping AT coverage c from 0.95 down to 0.10 (at
// alpha = beta = 2500) and asking, for each coverage level, whether any
// guarded-operation duration yields Y > 1 — and if so, which one.
//
// Run with: go run ./examples/atcoverage
package main

import (
	"fmt"
	"log"

	"guardedop/internal/core"
	"guardedop/internal/mdcd"
	"guardedop/internal/textplot"
)

func main() {
	coverages := []float64{0.95, 0.75, 0.50, 0.20, 0.10}

	fmt.Println("AT coverage sensitivity (theta=10000, alpha=beta=2500)")
	fmt.Println()

	rows := [][]string{{"coverage", "optimal phi", "max Y", "verdict"}}
	var series []textplot.Series
	var phis []float64

	for _, c := range coverages {
		p := mdcd.DefaultParams()
		p.Alpha, p.Beta = 2500, 2500
		p.Coverage = c

		analyzer, err := core.NewAnalyzer(p)
		if err != nil {
			log.Fatal(err)
		}
		grid := core.SweepGrid(p.Theta, 10)
		results, err := analyzer.Curve(grid)
		if err != nil {
			log.Fatal(err)
		}
		phis = grid

		var ys []float64
		best := results[0]
		for _, r := range results {
			ys = append(ys, r.Y)
			if r.Y > best.Y {
				best = r
			}
		}
		series = append(series, textplot.Series{Name: fmt.Sprintf("c=%.2f", c), Y: ys})

		verdict := "use G-OP"
		switch {
		case best.Y <= 1:
			verdict = "skip G-OP entirely"
		case best.Y < 1.1:
			verdict = "marginal - hard to justify"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", c),
			fmt.Sprintf("%.0f", best.Phi),
			fmt.Sprintf("%.4f", best.Y),
			verdict,
		})
	}

	fmt.Print(textplot.Table(rows))
	fmt.Println()
	fmt.Print(textplot.Chart("Y vs phi, by AT coverage", phis, series, 66, 16))
	fmt.Println()
	fmt.Println("paper: optimal phi is insensitive to c (6000 for c in {0.95, 0.75, 0.50})")
	fmt.Println("but max Y collapses from ≈1.45 to ≈1.15; at c=0.20 the best Y ≈ 1.06 is too")
	fmt.Println("small to justify guarding, and at c=0.10 Y < 1 for every phi > 0.")
}
