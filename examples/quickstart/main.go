// Quickstart: build a small stochastic activity network, generate its
// CTMC, and solve transient, accumulated and steady-state reward variables.
//
// The model is a two-component repairable system with a shared repair
// facility: each component fails at rate lambda and is repaired at rate mu,
// but only one repair can be in progress at a time. We ask three classic
// questions:
//
//  1. availability at time t         (instant-of-time reward)
//  2. expected downtime over [0, t]  (accumulated reward)
//  3. long-run availability          (steady-state reward)
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"guardedop/internal/reward"
	"guardedop/internal/san"
	"guardedop/internal/statespace"
)

func main() {
	const (
		lambda = 0.01 // failures per hour per component
		mu     = 0.5  // repairs per hour
	)

	// --- model construction ---------------------------------------------
	m := san.NewModel("two-component-repair")
	up := m.AddPlace("up", 2)     // working components
	down := m.AddPlace("down", 0) // failed components

	fail := m.AddTimedActivity("fail",
		func(mk san.Marking) float64 { return lambda * float64(mk.Get(up)) }).
		AddInputArc(up, 1)
	fail.AddCase(san.ConstProb(1)).AddOutputArc(down, 1)

	// One shared repair facility: the rate does not scale with the queue.
	repair := m.AddTimedActivity("repair", san.ConstRate(mu)).
		AddInputArc(down, 1)
	repair.AddCase(san.ConstProb(1)).AddOutputArc(up, 1)

	// --- state-space generation -----------------------------------------
	space, err := statespace.Generate(m, statespace.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("state space: %d tangible states\n", space.NumStates())
	for i, mk := range space.States {
		fmt.Printf("  state %d: %s\n", i, mk.Format(m))
	}

	// --- reward variables -------------------------------------------------
	// The system is "available" while at least one component is up.
	available := reward.NewStructure().Add("available",
		func(mk san.Marking) bool { return mk.Get(up) >= 1 }, 1)
	downtime := reward.NewStructure().Add("all down",
		func(mk san.Marking) bool { return mk.Get(up) == 0 }, 1)

	const t = 100.0
	avail, err := reward.InstantOfTime(space, available, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navailability at t=%.0f h:        %.8f\n", t, avail)

	expDown, err := reward.Accumulated(space, downtime, t)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected downtime over [0,%.0f]: %.6f h\n", t, expDown)

	longRun, err := reward.SteadyState(space, available)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("long-run availability:          %.8f\n", longRun)
}
